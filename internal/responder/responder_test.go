package responder

import (
	"bytes"
	"context"
	"crypto"
	"crypto/x509"
	"math/big"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/clock"
	"github.com/netmeasure/muststaple/internal/crl"
	"github.com/netmeasure/muststaple/internal/ocsp"
	"github.com/netmeasure/muststaple/internal/pki"
	"github.com/netmeasure/muststaple/internal/pkixutil"
)

var t0 = time.Date(2018, 4, 25, 0, 0, 0, 0, time.UTC)

type fixture struct {
	ca   *pki.CA
	db   *DB
	clk  *clock.Simulated
	leaf *pki.Leaf
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	ca, err := pki.NewRootCA(pki.Config{Name: "Responder Test CA", OCSPURL: "http://ocsp.resp.test"})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(pki.LeafOptions{DNSNames: []string{"resp.test"}, NotBefore: t0.AddDate(0, -1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	db.AddIssued(leaf.Certificate.SerialNumber, leaf.Certificate.NotAfter)
	return &fixture{ca: ca, db: db, clk: clock.NewSimulated(t0), leaf: leaf}
}

func (f *fixture) responder(p Profile) *Responder {
	return New("ocsp.resp.test", f.ca, f.db, f.clk, p)
}

func (f *fixture) request(t testing.TB) ([]byte, ocsp.CertID) {
	t.Helper()
	req, err := ocsp.NewRequest(f.leaf.Certificate, f.ca.Certificate, crypto.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	der, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return der, req.CertIDs[0]
}

func mustParse(t testing.TB, der []byte) *ocsp.Response {
	t.Helper()
	resp, err := ocsp.ParseResponse(der)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	return resp
}

func TestGoodResponse(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{})
	reqDER, id := f.request(t)
	der, ok := respondDER(r, reqDER)
	if !ok {
		t.Fatal("well-behaved responder returned a malformed body")
	}
	resp := mustParse(t, der)
	if resp.Status != ocsp.StatusSuccessful {
		t.Fatalf("status = %v", resp.Status)
	}
	single := resp.Find(id)
	if single == nil || single.Status != ocsp.Good {
		t.Fatalf("single = %+v, want good", single)
	}
	if err := resp.CheckSignatureFrom(f.ca.Certificate); err != nil {
		t.Errorf("signature: %v", err)
	}
	// Default margin: thisUpdate backdated by 1 hour.
	if got := t0.Sub(single.ThisUpdate); got != time.Hour {
		t.Errorf("thisUpdate margin = %v, want 1h", got)
	}
	// Default validity: 7 days.
	if got := single.NextUpdate.Sub(single.ThisUpdate); got != 7*24*time.Hour {
		t.Errorf("validity = %v, want 168h", got)
	}
}

func TestRevokedResponse(t *testing.T) {
	f := newFixture(t)
	revokedAt := t0.Add(-24 * time.Hour)
	f.db.Revoke(f.leaf.Certificate.SerialNumber, revokedAt, pkixutil.ReasonKeyCompromise)
	r := f.responder(Profile{})
	reqDER, id := f.request(t)
	der, _ := respondDER(r, reqDER)
	resp := mustParse(t, der)
	single := resp.Find(id)
	if single.Status != ocsp.Revoked {
		t.Fatalf("status = %v, want revoked", single.Status)
	}
	if !single.RevokedAt.Equal(revokedAt) {
		t.Errorf("revokedAt = %v, want %v", single.RevokedAt, revokedAt)
	}
	if single.Reason != pkixutil.ReasonKeyCompromise {
		t.Errorf("reason = %v", single.Reason)
	}
}

func TestUnknownSerial(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{})
	req, err := ocsp.NewRequestForSerial(big.NewInt(424242), f.ca.Certificate, crypto.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	reqDER, _ := req.Marshal()
	der, _ := respondDER(r, reqDER)
	resp := mustParse(t, der)
	if resp.Responses[0].Status != ocsp.Unknown {
		t.Errorf("status = %v, want unknown for unissued serial", resp.Responses[0].Status)
	}
}

func TestWrongIssuerGetsUnknown(t *testing.T) {
	f := newFixture(t)
	other, err := pki.NewRootCA(pki.Config{Name: "Unrelated CA"})
	if err != nil {
		t.Fatal(err)
	}
	r := f.responder(Profile{})
	req, err := ocsp.NewRequestForSerial(big.NewInt(1), other.Certificate, crypto.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	reqDER, _ := req.Marshal()
	der, _ := respondDER(r, reqDER)
	resp := mustParse(t, der)
	if resp.Responses[0].Status != ocsp.Unknown {
		t.Errorf("status = %v, want unknown for foreign issuer", resp.Responses[0].Status)
	}
}

func TestMalformedProfiles(t *testing.T) {
	f := newFixture(t)
	reqDER, _ := f.request(t)
	cases := map[MalformedKind][]byte{
		MalformedZero:       []byte("0"),
		MalformedEmpty:      {},
		MalformedJavaScript: nil, // content checked by parse failure only
		MalformedTruncated:  nil,
	}
	for kind, wantBody := range cases {
		r := f.responder(Profile{Malformed: kind})
		body, ok := respondDER(r, reqDER)
		if ok {
			t.Errorf("%v: expected malformed flag", kind)
		}
		if wantBody != nil && !bytes.Equal(body, wantBody) {
			t.Errorf("%v: body = %q", kind, body)
		}
		if _, err := ocsp.ParseResponse(body); err == nil {
			t.Errorf("%v: body should not parse as OCSP", kind)
		}
	}
}

func TestMalformedWindowed(t *testing.T) {
	// The sheca.com episode: correct responses, then 6 hours of "0",
	// then correct again (§5.3).
	f := newFixture(t)
	outage := Window{From: t0.Add(96 * time.Hour), To: t0.Add(102 * time.Hour)}
	r := f.responder(Profile{Malformed: MalformedZero, MalformedWindows: []Window{outage}})
	reqDER, _ := f.request(t)

	if _, ok := respondDER(r, reqDER); !ok {
		t.Error("before window: response should be well-formed")
	}
	f.clk.Set(t0.Add(98 * time.Hour))
	if body, ok := respondDER(r, reqDER); ok || string(body) != "0" {
		t.Errorf("inside window: want \"0\" body, got ok=%v body=%q", ok, body)
	}
	f.clk.Set(t0.Add(103 * time.Hour))
	if _, ok := respondDER(r, reqDER); !ok {
		t.Error("after window: response should be well-formed again")
	}
}

func TestSerialMismatchProfile(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{SerialMismatch: true})
	reqDER, id := f.request(t)
	der, _ := respondDER(r, reqDER)
	resp := mustParse(t, der)
	if resp.Find(id) != nil {
		t.Error("mismatching responder should not cover the requested serial")
	}
	if !resp.Responses[0].CertID.SameIssuer(id) {
		t.Error("mismatch keeps the issuer hashes")
	}
}

func TestBadSignatureProfile(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{BadSignature: true})
	reqDER, _ := f.request(t)
	der, ok := respondDER(r, reqDER)
	if !ok {
		t.Fatal("bad-signature responses must still be structurally valid")
	}
	resp := mustParse(t, der) // must parse!
	if err := resp.CheckSignatureFrom(f.ca.Certificate); err == nil {
		t.Error("signature should fail validation")
	}
}

func TestBlankNextUpdateProfile(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{BlankNextUpdate: true})
	reqDER, id := f.request(t)
	der, _ := respondDER(r, reqDER)
	resp := mustParse(t, der)
	if resp.Find(id).HasNextUpdate() {
		t.Error("nextUpdate should be blank")
	}
}

func TestThisUpdateOffsets(t *testing.T) {
	f := newFixture(t)
	reqDER, id := f.request(t)

	// Zero margin: thisUpdate == request time (17.2% of responders).
	r := f.responder(Profile{NoDefaultMargin: true})
	resp := mustParse(t, firstBody(respondDER(r, reqDER)))
	if !resp.Find(id).ThisUpdate.Equal(t0) {
		t.Errorf("zero-margin thisUpdate = %v, want %v", resp.Find(id).ThisUpdate, t0)
	}

	// Future thisUpdate (3% of responders): response not yet valid.
	r = f.responder(Profile{ThisUpdateOffset: -30 * time.Minute, NoDefaultMargin: true})
	resp = mustParse(t, firstBody(respondDER(r, reqDER)))
	single := resp.Find(id)
	if !single.ThisUpdate.After(t0) {
		t.Errorf("future thisUpdate = %v, want after %v", single.ThisUpdate, t0)
	}
	if single.ValidAt(t0) {
		t.Error("future-thisUpdate response must not validate now")
	}
}

func TestHugeValidity(t *testing.T) {
	// The 1,251-day validity period of Figure 8.
	f := newFixture(t)
	v := 1251 * 24 * time.Hour
	r := f.responder(Profile{Validity: v})
	reqDER, id := f.request(t)
	resp := mustParse(t, firstBody(respondDER(r, reqDER)))
	single := resp.Find(id)
	if got := single.NextUpdate.Sub(single.ThisUpdate); got != v {
		t.Errorf("validity = %v, want %v", got, v)
	}
}

func TestExtraSerials(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{ExtraSerials: 19})
	reqDER, id := f.request(t)
	resp := mustParse(t, firstBody(respondDER(r, reqDER)))
	if len(resp.Responses) != 20 {
		t.Fatalf("responses = %d, want 20", len(resp.Responses))
	}
	if resp.Find(id) == nil {
		t.Error("requested serial must still be covered")
	}
}

func TestSuperfluousCerts(t *testing.T) {
	f := newFixture(t)
	extra := []*x509.Certificate{f.ca.Certificate, f.leaf.Certificate}
	r := f.responder(Profile{SuperfluousCerts: extra})
	reqDER, _ := f.request(t)
	resp := mustParse(t, firstBody(respondDER(r, reqDER)))
	if len(resp.Certificates) != 2 {
		t.Errorf("embedded certs = %d, want 2", len(resp.Certificates))
	}
	// Still verifiable (direct CA signature).
	if err := resp.CheckSignatureFrom(f.ca.Certificate); err != nil {
		t.Errorf("signature: %v", err)
	}
}

func TestErrorStatusProfile(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{ErrorStatus: ocsp.StatusTryLater})
	reqDER, _ := f.request(t)
	resp := mustParse(t, firstBody(respondDER(r, reqDER)))
	if resp.Status != ocsp.StatusTryLater {
		t.Errorf("status = %v, want tryLater", resp.Status)
	}
}

func TestMalformedRequestGetsErrorResponse(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{})
	der, ok := respondDER(r, []byte("junk"))
	if !ok {
		t.Fatal("error response should be well-formed DER")
	}
	resp := mustParse(t, der)
	if resp.Status != ocsp.StatusMalformedRequest {
		t.Errorf("status = %v, want malformedRequest", resp.Status)
	}
}

func TestCachedResponses(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{CacheResponses: true, Validity: 4 * time.Hour, UpdateInterval: 2 * time.Hour})
	reqDER, id := f.request(t)

	f.clk.Set(t0.Add(10 * time.Minute))
	a := mustParse(t, firstBody(respondDER(r, reqDER)))
	f.clk.Set(t0.Add(70 * time.Minute))
	b := mustParse(t, firstBody(respondDER(r, reqDER)))
	// Same update window: identical bytes, identical producedAt.
	if !bytes.Equal(a.Raw, b.Raw) {
		t.Error("same-window cached responses should be byte-identical")
	}
	if !a.ProducedAt.Equal(b.ProducedAt) {
		t.Error("producedAt should be stable within a window")
	}
	// producedAt is the window start, well before receipt time — the
	// signal the paper uses to classify responders as not-on-demand.
	if got := f.clk.Now().Sub(a.ProducedAt); got < 2*time.Minute {
		t.Errorf("cached producedAt should lag receipt, lag = %v", got)
	}

	// Next window: fresh response.
	f.clk.Set(t0.Add(2*time.Hour + time.Minute))
	c := mustParse(t, firstBody(respondDER(r, reqDER)))
	if c.ProducedAt.Equal(a.ProducedAt) {
		t.Error("new window should produce a new response")
	}
	if !c.Find(id).ThisUpdate.After(a.Find(id).ThisUpdate) {
		t.Error("new window should advance thisUpdate")
	}
}

func TestOnDemandResponses(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{})
	reqDER, _ := f.request(t)
	a := mustParse(t, firstBody(respondDER(r, reqDER)))
	f.clk.Advance(time.Minute)
	b := mustParse(t, firstBody(respondDER(r, reqDER)))
	if !b.ProducedAt.After(a.ProducedAt) {
		t.Error("on-demand producedAt should track the clock")
	}
	if !a.ProducedAt.Equal(t0) {
		t.Errorf("on-demand producedAt = %v, want %v", a.ProducedAt, t0)
	}
}

func TestMultiInstanceSkew(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{
		CacheResponses: true,
		Validity:       4 * time.Hour,
		UpdateInterval: 2 * time.Hour,
		Instances:      4,
		InstanceSkew:   3 * time.Minute,
	})
	reqDER, _ := f.request(t)
	seen := make(map[time.Time]bool)
	for i := 0; i < 40; i++ {
		f.clk.Advance(time.Minute)
		resp := mustParse(t, firstBody(respondDER(r, reqDER)))
		seen[resp.ProducedAt] = true
	}
	if len(seen) < 2 {
		t.Errorf("multi-instance farm should expose skewed producedAt values, saw %d distinct", len(seen))
	}
}

func TestStatusOverrides(t *testing.T) {
	// Table 1: responders that say Good or Unknown for CRL-revoked
	// serials.
	f := newFixture(t)
	serial := f.leaf.Certificate.SerialNumber
	f.db.Revoke(serial, t0.Add(-time.Hour), pkixutil.ReasonAbsent)
	r := f.responder(Profile{StatusOverrides: map[string]ocsp.CertStatus{serial.String(): ocsp.Good}})
	reqDER, id := f.request(t)
	resp := mustParse(t, firstBody(respondDER(r, reqDER)))
	if resp.Find(id).Status != ocsp.Good {
		t.Errorf("override should force Good, got %v", resp.Find(id).Status)
	}
}

func TestRevocationTimeSkewAndReasonDrop(t *testing.T) {
	f := newFixture(t)
	serial := f.leaf.Certificate.SerialNumber
	revokedAt := t0.Add(-10 * time.Hour)
	f.db.Revoke(serial, revokedAt, pkixutil.ReasonKeyCompromise)
	skew := 9 * time.Hour // msocsp-style lag
	r := f.responder(Profile{RevocationTimeSkew: skew, DropReasonCodes: true})
	reqDER, id := f.request(t)
	resp := mustParse(t, firstBody(respondDER(r, reqDER)))
	single := resp.Find(id)
	if !single.RevokedAt.Equal(revokedAt.Add(skew)) {
		t.Errorf("revokedAt = %v, want %v", single.RevokedAt, revokedAt.Add(skew))
	}
	if single.Reason != pkixutil.ReasonAbsent {
		t.Errorf("reason should be dropped, got %v", single.Reason)
	}
}

func TestDelegatedResponder(t *testing.T) {
	f := newFixture(t)
	delegate, err := f.ca.IssueOCSPResponderCert("Delegated", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	r := f.responder(Profile{})
	r.Signer = delegate.Key
	r.SignerCert = delegate.Certificate
	reqDER, _ := f.request(t)
	resp := mustParse(t, firstBody(respondDER(r, reqDER)))
	if len(resp.Certificates) == 0 {
		t.Fatal("delegated responder must embed its certificate")
	}
	if err := resp.CheckSignatureFrom(f.ca.Certificate); err != nil {
		t.Errorf("delegated signature: %v", err)
	}
}

func TestCRLPublisher(t *testing.T) {
	f := newFixture(t)
	serial := f.leaf.Certificate.SerialNumber
	f.db.Revoke(serial, t0.Add(-time.Hour), pkixutil.ReasonSuperseded)
	pub := NewCRLPublisher(f.ca, f.db, f.clk)
	der, err := pub.Current()
	if err != nil {
		t.Fatal(err)
	}
	list, err := crl.Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	if err := list.CheckSignatureFrom(f.ca.Certificate); err != nil {
		t.Errorf("CRL signature: %v", err)
	}
	e := list.Find(serial)
	if e == nil {
		t.Fatal("revoked serial missing from CRL")
	}
	if e.Reason != pkixutil.ReasonSuperseded {
		t.Errorf("reason = %v", e.Reason)
	}
	if !list.ValidAt(f.clk.Now()) {
		t.Error("fresh CRL should be valid now")
	}

	// Same window → same bytes; new window → new CRL number.
	der2, _ := pub.Current()
	if !bytes.Equal(der, der2) {
		t.Error("same-window CRL should be cached")
	}
	f.clk.Advance(pub.validity()) // beyond the update interval
	der3, _ := pub.Current()
	list3, err := crl.Parse(der3)
	if err != nil {
		t.Fatal(err)
	}
	if list3.Number.Cmp(list.Number) <= 0 {
		t.Error("CRL number should increase across windows")
	}
}

func TestCRLPublisherPruneExpired(t *testing.T) {
	f := newFixture(t)
	expired, err := f.ca.IssueLeaf(pki.LeafOptions{
		DNSNames:  []string{"expired.test"},
		NotBefore: t0.AddDate(-1, 0, 0),
		NotAfter:  t0.AddDate(0, -6, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.db.AddIssued(expired.Certificate.SerialNumber, expired.Certificate.NotAfter)
	f.db.Revoke(expired.Certificate.SerialNumber, t0.AddDate(0, -7, 0), pkixutil.ReasonAbsent)
	f.db.Revoke(f.leaf.Certificate.SerialNumber, t0.Add(-time.Hour), pkixutil.ReasonAbsent)

	pub := NewCRLPublisher(f.ca, f.db, f.clk)
	pub.PruneExpired = true
	der, err := pub.Current()
	if err != nil {
		t.Fatal(err)
	}
	list, err := crl.Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	if list.Find(expired.Certificate.SerialNumber) != nil {
		t.Error("expired revoked cert should be pruned from the CRL")
	}
	if list.Find(f.leaf.Certificate.SerialNumber) == nil {
		t.Error("unexpired revoked cert must remain")
	}
}

func TestCRLServeHTTP(t *testing.T) {
	f := newFixture(t)
	pub := NewCRLPublisher(f.ca, f.db, f.clk)
	srv := httptest.NewServer(pub)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.Header.Get("Content-Type") != "application/pkix-crl" {
		t.Errorf("content type %q", resp.Header.Get("Content-Type"))
	}
	if _, err := crl.Parse(body); err != nil {
		t.Errorf("served CRL does not parse: %v", err)
	}
}

func TestDBRevokedEntriesSorted(t *testing.T) {
	db := NewDB()
	for _, s := range []int64{30, 10, 20} {
		db.AddIssued(big.NewInt(s), t0.AddDate(1, 0, 0))
		db.Revoke(big.NewInt(s), t0, pkixutil.ReasonAbsent)
	}
	got := db.RevokedEntries()
	if len(got) != 3 || got[0].Serial.Int64() != 10 || got[2].Serial.Int64() != 30 {
		t.Errorf("entries not sorted: %+v", got)
	}
	// Revoking an unknown serial is a no-op.
	db.Revoke(big.NewInt(999), t0, pkixutil.ReasonAbsent)
	if len(db.RevokedEntries()) != 3 {
		t.Error("revoking unknown serial should be ignored")
	}
	if got := db.Serials(); len(got) != 3 || got[0].Int64() != 10 {
		t.Errorf("Serials = %v", got)
	}
}

func firstBody(b []byte, _ bool) []byte { return b }

func readAll(t testing.TB, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestServingEpoch(t *testing.T) {
	f := newFixture(t)
	r := f.responder(NewProfile(WithValidity(24*time.Hour), WithCachedResponses(12*time.Hour)))
	// The responder phases its windows per host, so anchor safely inside
	// one: a second past the start of the window containing t0.
	now := r.windowStart(f.clk.Now()).Add(time.Second)

	win1, gen1 := r.ServingEpoch(now)
	win2, gen2 := r.ServingEpoch(now.Add(time.Minute))
	if win1 != win2 || gen1 != gen2 {
		t.Error("epoch changed within one update window")
	}
	// Crossing a window boundary changes the window half of the epoch.
	win3, _ := r.ServingEpoch(now.Add(13 * time.Hour))
	if win3 == win1 {
		t.Error("epoch window did not advance across an update boundary")
	}
	// A database write (revocation) bumps the generation half.
	f.db.Revoke(f.leaf.Certificate.SerialNumber, now, 1)
	_, gen3 := r.ServingEpoch(now)
	if gen3 == gen1 {
		t.Error("epoch generation did not advance on revocation")
	}

	// An uncached responder's window moves with every instant: no two
	// calls may share an epoch, so nothing gets memoized against it.
	u := f.responder(NewProfile(WithValidity(24 * time.Hour)))
	uw1, _ := u.ServingEpoch(now)
	uw2, _ := u.ServingEpoch(now.Add(time.Nanosecond))
	if uw1 == uw2 {
		t.Error("uncached responder reused a serving epoch")
	}
}

func TestFastServeEligible(t *testing.T) {
	f := newFixture(t)
	cached := NewProfile(WithValidity(24*time.Hour), WithCachedResponses(12*time.Hour))
	if !f.responder(cached).FastServeEligible() {
		t.Error("window-cached single-instance responder must be eligible")
	}
	cases := map[string]*Responder{
		"uncached":   f.responder(NewProfile(WithValidity(24 * time.Hour))),
		"on-demand":  New("ocsp.resp.test", f.ca, f.db, f.clk, cached, WithOnDemandSigning()),
		"farm":       f.responder(NewProfile(WithValidity(24*time.Hour), WithCachedResponses(12*time.Hour), WithInstances(3, time.Hour))),
		"malformed":  f.responder(NewProfile(WithValidity(24*time.Hour), WithCachedResponses(12*time.Hour), WithMalformed(MalformedTruncated))),
		"error-stat": f.responder(NewProfile(WithValidity(24*time.Hour), WithCachedResponses(12*time.Hour), WithErrorStatus(ocsp.StatusTryLater))),
	}
	for name, r := range cases {
		if r.FastServeEligible() {
			t.Errorf("%s responder must not be fast-serve eligible", name)
		}
	}
}

// respondDER adapts context-first Respond to the historical (body, ok)
// shape the tests assert against; ok is false when the body is a
// profile-injected malformed blob.
func respondDER(r *Responder, reqDER []byte) ([]byte, bool) {
	res, err := r.Respond(context.Background(), reqDER)
	if err != nil {
		return nil, false
	}
	return res.DER, !res.Malformed
}
