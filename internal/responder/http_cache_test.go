package responder

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/ocsp"
)

// doGET performs a GET exchange against the responder over real HTTP and
// returns the response.
func doGET(t *testing.T, r *Responder, reqDER []byte) *http.Response {
	t.Helper()
	srv := httptest.NewServer(r)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/" + ocsp.EncodeGETPath(reqDER))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestRFC5019CacheHeadersOnGET(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{Validity: 24 * time.Hour})
	reqDER, _ := f.request(t)
	resp := doGET(t, r, reqDER)

	cc := resp.Header.Get("Cache-Control")
	if cc == "" {
		t.Fatal("GET response missing Cache-Control")
	}
	if !strings.Contains(cc, "must-revalidate") || !strings.Contains(cc, "public") {
		t.Errorf("Cache-Control = %q", cc)
	}
	// max-age ≈ validity minus the 1h default thisUpdate margin.
	var maxAge int
	for _, part := range strings.Split(cc, ",") {
		part = strings.TrimSpace(part)
		if rest, ok := strings.CutPrefix(part, "max-age="); ok {
			maxAge, _ = strconv.Atoi(rest)
		}
	}
	want := int((23 * time.Hour).Seconds())
	if maxAge != want {
		t.Errorf("max-age = %d, want %d", maxAge, want)
	}
	if resp.Header.Get("Expires") == "" || resp.Header.Get("Last-Modified") == "" {
		t.Error("Expires/Last-Modified missing")
	}
	etag := resp.Header.Get("ETag")
	if len(etag) != 42 { // quoted SHA-1 hex
		t.Errorf("ETag = %q", etag)
	}
	// The Expires header must equal nextUpdate.
	exp, err := http.ParseTime(resp.Header.Get("Expires"))
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Equal(t0.Add(23 * time.Hour)) {
		t.Errorf("Expires = %v, want %v", exp, t0.Add(23*time.Hour))
	}
}

func TestNoCacheHeadersOnPOST(t *testing.T) {
	// RFC 5019 caching applies to GET; POST responses are not cacheable.
	f := newFixture(t)
	r := f.responder(Profile{Validity: 24 * time.Hour})
	reqDER, _ := f.request(t)
	srv := httptest.NewServer(r)
	defer srv.Close()
	resp, err := http.Post(srv.URL, ocsp.ContentTypeRequest, bytes.NewReader(reqDER))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Cache-Control") != "" {
		t.Error("POST response must not carry Cache-Control")
	}
}

func TestNoCacheHeadersForBlankNextUpdate(t *testing.T) {
	// A response with no expiry must not invite HTTP caching.
	f := newFixture(t)
	r := f.responder(Profile{BlankNextUpdate: true})
	reqDER, _ := f.request(t)
	resp := doGET(t, r, reqDER)
	if resp.Header.Get("Cache-Control") != "" {
		t.Error("blank-nextUpdate response must not carry Cache-Control")
	}
}

func TestNoCacheHeadersForMalformed(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{Malformed: MalformedZero})
	reqDER, _ := f.request(t)
	resp := doGET(t, r, reqDER)
	if resp.Header.Get("Cache-Control") != "" {
		t.Error("malformed bodies must not carry caching headers")
	}
}

func TestETagStableWithinWindow(t *testing.T) {
	f := newFixture(t)
	r := f.responder(Profile{CacheResponses: true, Validity: 12 * time.Hour, UpdateInterval: 6 * time.Hour})
	reqDER, _ := f.request(t)
	// Update windows carry a per-responder phase, so a boundary may fall
	// anywhere; three closely spaced GETs must contain at least one
	// same-window (identical-ETag) adjacent pair, since two boundaries
	// cannot occur within two minutes of a six-hour interval.
	var etags []string
	for i := 0; i < 3; i++ {
		resp := doGET(t, r, reqDER)
		if etag := resp.Header.Get("ETag"); etag == "" {
			t.Fatal("missing ETag")
		} else {
			etags = append(etags, etag)
		}
		f.clk.Advance(time.Minute)
	}
	if etags[0] != etags[1] && etags[1] != etags[2] {
		t.Errorf("no stable adjacent pair: %v", etags)
	}
	// A later window produces new bytes and a new ETag.
	f.clk.Advance(13 * time.Hour)
	later := doGET(t, r, reqDER)
	if later.Header.Get("ETag") == etags[2] {
		t.Error("new update window should change the ETag")
	}
}
