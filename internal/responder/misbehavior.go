package responder

import (
	"flag"
	"fmt"
	"strconv"
	"time"

	"github.com/netmeasure/muststaple/internal/ocsp"
)

// This file is the single source of truth for responder misbehaviors.
// Every response-quality defect the paper catalogues (§5.3–§5.4) is
// expressed twice from one definition: as a functional ProfileOption for
// programmatic construction (internal/world's calibrated fleet, tests),
// and as a row in the Misbehaviors table that cmd/ocspresponder binds to
// CLI flags. Adding a defect means adding one option constructor and one
// table row — no cmd changes, no flag soup.

// ProfileOption mutates a Profile under construction. Options are pure
// field writers: they never read the clock or draw randomness, so
// applying them between seeded RNG draws cannot perturb a world build.
type ProfileOption func(*Profile)

// NewProfile builds a Profile by applying opts in order over the
// well-behaved zero value.
func NewProfile(opts ...ProfileOption) Profile {
	var p Profile
	p.Apply(opts...)
	return p
}

// Apply applies opts to an existing profile in order — the incremental
// form used when a base behavior is refined (the world generator layers
// quality-defect budgets over an already-assigned base profile).
func (p *Profile) Apply(opts ...ProfileOption) {
	for _, o := range opts {
		o(p)
	}
}

// WithValidity sets nextUpdate − thisUpdate (Figure 8's axis).
func WithValidity(d time.Duration) ProfileOption {
	return func(p *Profile) { p.Validity = d }
}

// WithBlankNextUpdate omits nextUpdate entirely (9.1% of responders).
func WithBlankNextUpdate() ProfileOption {
	return func(p *Profile) { p.BlankNextUpdate = true }
}

// WithZeroMargin sets thisUpdate to the request time, dropping the
// default 1-hour clock-skew margin (17.2% of responders).
func WithZeroMargin() ProfileOption {
	return func(p *Profile) {
		p.NoDefaultMargin = true
		p.ThisUpdateOffset = 0
	}
}

// WithThisUpdateOffset backdates thisUpdate by d (negative values give
// the future-thisUpdate misbehavior of 3% of responders). The offset is
// explicit, so the default margin is disabled.
func WithThisUpdateOffset(d time.Duration) ProfileOption {
	return func(p *Profile) {
		p.NoDefaultMargin = true
		p.ThisUpdateOffset = d
	}
}

// WithCachedResponses pre-generates one response per update window
// instead of signing on demand (51.7% of responders). interval 0 keeps
// the Validity/2 default.
func WithCachedResponses(interval time.Duration) ProfileOption {
	return func(p *Profile) {
		p.CacheResponses = true
		p.UpdateInterval = interval
	}
}

// WithOnDemandGeneration forces per-request signing, undoing a cached
// base behavior (the zero-margin budgets necessarily sign on demand).
func WithOnDemandGeneration() ProfileOption {
	return func(p *Profile) { p.CacheResponses = false }
}

// WithInstances models a load-balanced farm of n members whose
// generation times are skewed by skew (producedAt can regress between
// fetches, §5.4 footnote 17). skew 0 keeps the 1-minute default.
func WithInstances(n int, skew time.Duration) ProfileOption {
	return func(p *Profile) {
		p.Instances = n
		p.InstanceSkew = skew
	}
}

// WithExtraSerials adds n unsolicited single responses (Figure 7).
func WithExtraSerials(n int) ProfileOption {
	return func(p *Profile) { p.ExtraSerials = n }
}

// WithMalformed substitutes a broken body, persistently when no windows
// are given, transiently inside them otherwise (§5.3).
func WithMalformed(kind MalformedKind, windows ...Window) ProfileOption {
	return func(p *Profile) {
		p.Malformed = kind
		p.MalformedWindows = windows
	}
}

// WithSerialMismatch answers about a different serial than requested.
func WithSerialMismatch() ProfileOption {
	return func(p *Profile) { p.SerialMismatch = true }
}

// WithBadSignature corrupts response signatures after signing.
func WithBadSignature() ProfileOption {
	return func(p *Profile) { p.BadSignature = true }
}

// WithErrorStatus answers every request with an OCSP error status.
func WithErrorStatus(st ocsp.ResponseStatus) ProfileOption {
	return func(p *Profile) { p.ErrorStatus = st }
}

// WithStatusOverride forces the returned status for one serial (decimal
// string) regardless of the database — the Table 1 discrepancies.
func WithStatusOverride(serial string, st ocsp.CertStatus) ProfileOption {
	return func(p *Profile) {
		if p.StatusOverrides == nil {
			p.StatusOverrides = make(map[string]ocsp.CertStatus)
		}
		p.StatusOverrides[serial] = st
	}
}

// WithRevocationTimeSkew shifts OCSP revocation times relative to the
// CRL's ground truth (ocsp.msocsp.com lagged its CRL by up to 9 days).
func WithRevocationTimeSkew(d time.Duration) ProfileOption {
	return func(p *Profile) { p.RevocationTimeSkew = d }
}

// WithDropReasonCodes omits revocation reasons that the CRL carries.
func WithDropReasonCodes() ProfileOption {
	return func(p *Profile) { p.DropReasonCodes = true }
}

// ParseMalformedKind maps the CLI spelling of a malformed-body kind to
// its enum value.
func ParseMalformedKind(s string) (MalformedKind, error) {
	switch s {
	case "zero":
		return MalformedZero, nil
	case "empty":
		return MalformedEmpty, nil
	case "js":
		return MalformedJavaScript, nil
	case "truncated":
		return MalformedTruncated, nil
	}
	return MalformedNone, fmt.Errorf("responder: unknown malformed kind %q (want zero, empty, js, or truncated)", s)
}

// ParseErrorStatus maps the CLI spelling of an always-error status to
// its enum value.
func ParseErrorStatus(s string) (ocsp.ResponseStatus, error) {
	switch s {
	case "trylater":
		return ocsp.StatusTryLater, nil
	case "internal":
		return ocsp.StatusInternalError, nil
	case "unauthorized":
		return ocsp.StatusUnauthorized, nil
	}
	return ocsp.StatusSuccessful, fmt.Errorf("responder: unknown error status %q (want trylater, internal, or unauthorized)", s)
}

// Misbehavior is one nameable response-quality defect with its CLI
// binding: the flag name and usage string, whether the flag is boolean,
// and the parser turning the flag's value into the ProfileOption it maps
// onto (1:1 — every flag is exactly one option).
type Misbehavior struct {
	// Flag is the CLI flag name (also the misbehavior's canonical name).
	Flag string
	// Usage is the flag's help text.
	Usage string
	// Bool marks presence-style flags; their Option ignores the value.
	Bool bool
	// Option parses the flag value into the option to apply.
	Option func(value string) (ProfileOption, error)
}

func boolMisbehavior(name, usage string, opt ProfileOption) Misbehavior {
	return Misbehavior{Flag: name, Usage: usage, Bool: true,
		Option: func(string) (ProfileOption, error) { return opt, nil }}
}

func durationMisbehavior(name, usage string, opt func(time.Duration) ProfileOption) Misbehavior {
	return Misbehavior{Flag: name, Usage: usage,
		Option: func(v string) (ProfileOption, error) {
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, err
			}
			return opt(d), nil
		}}
}

func intMisbehavior(name, usage string, opt func(int) ProfileOption) Misbehavior {
	return Misbehavior{Flag: name, Usage: usage,
		Option: func(v string) (ProfileOption, error) {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, err
			}
			return opt(n), nil
		}}
}

// Misbehaviors is the canonical defect table: everything a standalone
// responder can be told to do wrong, in stable order. cmd/ocspresponder
// binds exactly this table, so a new row here appears as a new flag with
// no cmd changes.
func Misbehaviors() []Misbehavior {
	return []Misbehavior{
		durationMisbehavior("validity", "response validity period (nextUpdate - thisUpdate)", WithValidity),
		boolMisbehavior("blank-next-update", "omit nextUpdate (responses never expire)", WithBlankNextUpdate()),
		boolMisbehavior("zero-margin", "set thisUpdate to the request time (no clock-skew margin)", WithZeroMargin()),
		durationMisbehavior("this-update-offset", "backdate thisUpdate by this much (negative: future thisUpdate)", WithThisUpdateOffset),
		{Flag: "cached", Usage: "pre-generate responses per update window instead of signing on demand", Bool: true,
			Option: func(string) (ProfileOption, error) { return func(p *Profile) { p.CacheResponses = true }, nil }},
		durationMisbehavior("update-interval", "cache update interval (with -cached; 0 = validity/2)",
			func(d time.Duration) ProfileOption {
				return func(p *Profile) { p.UpdateInterval = d }
			}),
		intMisbehavior("instances", "model a load-balanced farm of this many skewed members",
			func(n int) ProfileOption { return func(p *Profile) { p.Instances = n } }),
		durationMisbehavior("instance-skew", "generation-time skew between farm members (with -instances)",
			func(d time.Duration) ProfileOption { return func(p *Profile) { p.InstanceSkew = d } }),
		intMisbehavior("extra-serials", "unsolicited serials per response", WithExtraSerials),
		{Flag: "malformed", Usage: "serve malformed bodies: zero, empty, js, or truncated",
			Option: func(v string) (ProfileOption, error) {
				kind, err := ParseMalformedKind(v)
				if err != nil {
					return nil, err
				}
				return WithMalformed(kind), nil
			}},
		boolMisbehavior("serial-mismatch", "answer about the wrong serial", WithSerialMismatch()),
		boolMisbehavior("bad-signature", "corrupt response signatures", WithBadSignature()),
		{Flag: "error-status", Usage: "always return an OCSP error: trylater, internal, unauthorized",
			Option: func(v string) (ProfileOption, error) {
				st, err := ParseErrorStatus(v)
				if err != nil {
					return nil, err
				}
				return WithErrorStatus(st), nil
			}},
		durationMisbehavior("revocation-time-skew", "shift OCSP revocation times relative to the CRL", WithRevocationTimeSkew),
		boolMisbehavior("drop-reason-codes", "omit revocation reason codes that the CRL carries", WithDropReasonCodes()),
	}
}

// MisbehaviorFlags accumulates the options selected on a command line,
// in flag-appearance order.
type MisbehaviorFlags struct {
	opts []ProfileOption
}

// BindMisbehaviorFlags registers every Misbehaviors row on fs and
// returns the accumulator whose Profile method builds the resulting
// behavior after fs.Parse.
func BindMisbehaviorFlags(fs *flag.FlagSet) *MisbehaviorFlags {
	m := &MisbehaviorFlags{}
	for _, mb := range Misbehaviors() {
		mb := mb
		record := func(v string) error {
			opt, err := mb.Option(v)
			if err != nil {
				return err
			}
			m.opts = append(m.opts, opt)
			return nil
		}
		if mb.Bool {
			fs.BoolFunc(mb.Flag, mb.Usage, func(v string) error {
				// -flag and -flag=true select the misbehavior;
				// -flag=false is an explicit no-op.
				if on, err := strconv.ParseBool(v); err != nil || !on {
					return err
				}
				return record(v)
			})
		} else {
			fs.Func(mb.Flag, mb.Usage, record)
		}
	}
	return m
}

// Profile builds the selected behavior profile.
func (m *MisbehaviorFlags) Profile() Profile {
	return NewProfile(m.opts...)
}
