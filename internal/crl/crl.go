// Package crl is a from-scratch implementation of X.509 Certificate
// Revocation Lists (RFC 5280 §5) on top of encoding/asn1: issuing, signing,
// parsing, and verifying CertificateLists, with per-entry reason codes, the
// CRL number extension, and expired-entry pruning (CAs may drop revoked
// certificates from CRLs once they expire — paper §2.2, footnote 3).
//
// The CRL-vs-OCSP consistency study (paper §5.4, Table 1, Figure 10) runs
// on this package and internal/ocsp.
package crl

import (
	"crypto"
	cryptorand "crypto/rand"
	"crypto/x509"
	"encoding/asn1"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"
	"sync/atomic"
	"time"

	"github.com/netmeasure/muststaple/internal/pkixutil"
)

// Entry is one revoked certificate in a CRL.
type Entry struct {
	Serial    *big.Int
	RevokedAt time.Time
	// Reason is pkixutil.ReasonAbsent when the entry carries no
	// reasonCode extension (the overwhelmingly common case: the paper
	// cites prior work that the vast majority of revocations include no
	// reason code).
	Reason pkixutil.ReasonCode
}

// CRL is a parsed or to-be-issued certificate revocation list.
type CRL struct {
	// Issuer is the raw DER subject of the issuing CA.
	RawIssuer []byte
	// ThisUpdate/NextUpdate bound the list's validity period; CAs must
	// republish before NextUpdate even when nothing new was revoked.
	ThisUpdate time.Time
	NextUpdate time.Time
	// Number is the monotonically increasing CRL number extension
	// value, or nil if absent.
	Number *big.Int
	// Entries are the revoked certificates, sorted by serial.
	Entries []Entry

	// Raw is the full DER, RawTBS the signed portion; populated by
	// Parse and Create.
	Raw    []byte
	RawTBS []byte
	// SignatureAlgorithm and Signature are the outer signature fields.
	SignatureAlgorithm asn1.ObjectIdentifier
	Signature          []byte

	// sortedState caches whether Entries is sorted by serial, so Find
	// decides between binary and linear search once instead of paying a
	// full linear fallback on every miss. Parse and Create record it;
	// for hand-built lists Find verifies lazily on first use. Entries
	// must not be reordered after the first Find call.
	sortedState int32
}

// sortedState values.
const (
	sortednessUnknown int32 = iota
	sortednessSorted
	sortednessUnsorted
)

// Wire structures (RFC 5280 §5.1).
type certificateListASN1 struct {
	TBSCertList        asn1.RawValue
	SignatureAlgorithm pkixutil.AlgorithmIdentifier
	Signature          asn1.BitString
}

type tbsCertListASN1 struct {
	Version             int `asn1:"optional,default:0"`
	Signature           pkixutil.AlgorithmIdentifier
	Issuer              asn1.RawValue
	ThisUpdate          time.Time
	NextUpdate          time.Time         `asn1:"optional"`
	RevokedCertificates []revokedCertASN1 `asn1:"optional"`
	Extensions          []extensionASN1   `asn1:"explicit,tag:0,optional"`
}

type revokedCertASN1 struct {
	Serial     *big.Int
	RevokedAt  time.Time
	Extensions []extensionASN1 `asn1:"optional"`
}

type extensionASN1 struct {
	ID       asn1.ObjectIdentifier
	Critical bool `asn1:"optional"`
	Value    []byte
}

// CreateOptions configures Create.
type CreateOptions struct {
	// Rand is the signing randomness source; nil means crypto/rand.
	Rand io.Reader
}

// Create issues a signed CRL from the given issuer CA certificate and key.
// Entries need not be sorted; the encoder sorts them by serial for
// deterministic output.
func Create(issuer *x509.Certificate, key crypto.Signer, list *CRL, opts CreateOptions) ([]byte, error) {
	if issuer == nil || key == nil || list == nil {
		return nil, errors.New("crl: nil issuer, key, or list")
	}
	if list.ThisUpdate.IsZero() {
		return nil, errors.New("crl: thisUpdate is required")
	}
	rand := opts.Rand
	if rand == nil {
		rand = cryptorand.Reader
	}

	entries := make([]Entry, len(list.Entries))
	copy(entries, list.Entries)
	sorted := int32(sortednessSorted)
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Serial.Cmp(entries[i].Serial) > 0 {
			sorted = sortednessUnsorted
			break
		}
	}
	atomic.StoreInt32(&list.sortedState, sorted)
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Serial.Cmp(entries[j].Serial) < 0
	})

	// The inner signature AlgorithmIdentifier must match the outer one.
	sigAlg, err := pkixutil.SignatureAlgorithmForKey(key)
	if err != nil {
		return nil, err
	}

	tbs := tbsCertListASN1{
		Version:    1, // v2
		Signature:  sigAlg,
		Issuer:     asn1.RawValue{FullBytes: issuer.RawSubject},
		ThisUpdate: list.ThisUpdate.UTC().Truncate(time.Second),
	}
	if !list.NextUpdate.IsZero() {
		tbs.NextUpdate = list.NextUpdate.UTC().Truncate(time.Second)
	}
	for _, e := range entries {
		w := revokedCertASN1{Serial: e.Serial, RevokedAt: e.RevokedAt.UTC().Truncate(time.Second)}
		if e.Reason != pkixutil.ReasonAbsent {
			val, err := pkixutil.MarshalReasonCodeExtension(e.Reason)
			if err != nil {
				return nil, err
			}
			w.Extensions = []extensionASN1{{ID: pkixutil.OIDExtensionReasonCode, Value: val}}
		}
		tbs.RevokedCertificates = append(tbs.RevokedCertificates, w)
	}
	if list.Number != nil {
		numDER, err := asn1.Marshal(list.Number)
		if err != nil {
			return nil, fmt.Errorf("crl: marshal CRL number: %w", err)
		}
		tbs.Extensions = append(tbs.Extensions, extensionASN1{ID: pkixutil.OIDExtensionCRLNumber, Value: numDER})
	}

	tbsDER, err := asn1.Marshal(tbs)
	if err != nil {
		return nil, fmt.Errorf("crl: marshal tbsCertList: %w", err)
	}
	alg, sig, err := pkixutil.SignTBS(rand, key, tbsDER)
	if err != nil {
		return nil, err
	}
	der, err := asn1.Marshal(certificateListASN1{
		TBSCertList:        asn1.RawValue{FullBytes: tbsDER},
		SignatureAlgorithm: alg,
		Signature:          asn1.BitString{Bytes: sig, BitLength: len(sig) * 8},
	})
	if err != nil {
		return nil, fmt.Errorf("crl: marshal certificateList: %w", err)
	}
	return der, nil
}

// Parse decodes a DER CRL. Signature verification is separate
// (CheckSignatureFrom) so callers can classify parse and signature failures
// independently.
func Parse(der []byte) (*CRL, error) {
	var w certificateListASN1
	rest, err := asn1.Unmarshal(der, &w)
	if err != nil {
		return nil, fmt.Errorf("crl: parse certificateList: %w", err)
	}
	if len(rest) != 0 {
		return nil, errors.New("crl: trailing data")
	}
	var tbs tbsCertListASN1
	rest, err = asn1.Unmarshal(w.TBSCertList.FullBytes, &tbs)
	if err != nil {
		return nil, fmt.Errorf("crl: parse tbsCertList: %w", err)
	}
	if len(rest) != 0 {
		return nil, errors.New("crl: trailing data after tbsCertList")
	}

	out := &CRL{
		RawIssuer:          tbs.Issuer.FullBytes,
		ThisUpdate:         tbs.ThisUpdate,
		NextUpdate:         tbs.NextUpdate,
		Raw:                der,
		RawTBS:             w.TBSCertList.FullBytes,
		SignatureAlgorithm: w.SignatureAlgorithm.Algorithm,
		Signature:          w.Signature.RightAlign(),
	}
	out.sortedState = sortednessSorted //lint:allow atomicsafe not yet published; Parse builds the list single-threaded before returning it
	for i, rc := range tbs.RevokedCertificates {
		e := Entry{Serial: rc.Serial, RevokedAt: rc.RevokedAt, Reason: pkixutil.ReasonAbsent}
		for _, ext := range rc.Extensions {
			if ext.ID.Equal(pkixutil.OIDExtensionReasonCode) {
				r, err := pkixutil.ParseReasonCodeExtension(ext.Value)
				if err != nil {
					return nil, err
				}
				e.Reason = r
			}
		}
		// Record order violations as we go: issuers are not obliged to
		// emit sorted entries, and Find must not assume they do.
		if i > 0 && out.Entries[i-1].Serial.Cmp(rc.Serial) > 0 {
			out.sortedState = sortednessUnsorted //lint:allow atomicsafe not yet published; Parse builds the list single-threaded before returning it
		}
		out.Entries = append(out.Entries, e)
	}
	for _, ext := range tbs.Extensions {
		if ext.ID.Equal(pkixutil.OIDExtensionCRLNumber) {
			n := new(big.Int)
			if _, err := asn1.Unmarshal(ext.Value, &n); err != nil {
				return nil, fmt.Errorf("crl: parse CRL number: %w", err)
			}
			out.Number = n
		}
	}
	return out, nil
}

// CheckSignatureFrom verifies the CRL signature against the issuer.
func (c *CRL) CheckSignatureFrom(issuer *x509.Certificate) error {
	return pkixutil.VerifyTBS(issuer.PublicKey, c.SignatureAlgorithm, c.RawTBS, c.Signature)
}

// Find returns the entry for serial, or nil if the serial is not revoked
// according to this CRL. Sorted lists (everything Create emits, and most
// parsed CRLs) get a binary search; only lists whose entries genuinely
// violate serial order pay the linear scan — previously every miss did.
func (c *CRL) Find(serial *big.Int) *Entry {
	if c.sortedness() == sortednessSorted {
		n := len(c.Entries)
		i := sort.Search(n, func(i int) bool { return c.Entries[i].Serial.Cmp(serial) >= 0 })
		if i < n && c.Entries[i].Serial.Cmp(serial) == 0 {
			return &c.Entries[i]
		}
		return nil
	}
	for j := range c.Entries {
		if c.Entries[j].Serial.Cmp(serial) == 0 {
			return &c.Entries[j]
		}
	}
	return nil
}

// sortedness returns the cached sort state, verifying the invariant once
// for lists built by hand rather than by Parse or Create.
func (c *CRL) sortedness() int32 {
	if s := atomic.LoadInt32(&c.sortedState); s != sortednessUnknown {
		return s
	}
	s := sortednessSorted
	for i := 1; i < len(c.Entries); i++ {
		if c.Entries[i-1].Serial.Cmp(c.Entries[i].Serial) > 0 {
			s = sortednessUnsorted
			break
		}
	}
	atomic.StoreInt32(&c.sortedState, s)
	return s
}

// ValidAt reports whether the CRL is within its validity window at t. A
// missing NextUpdate is treated as never expiring.
func (c *CRL) ValidAt(t time.Time) bool {
	if t.Before(c.ThisUpdate) {
		return false
	}
	return c.NextUpdate.IsZero() || !t.After(c.NextUpdate)
}

// PruneExpired returns a copy of entries with serials of certificates that
// expired before cutoff removed, given a lookup from serial to certificate
// expiry. CAs do this to bound CRL growth (paper §2.2 footnote 3); it is
// also why the consistency study must cross-reference serials against
// unexpired certificates before querying OCSP.
func PruneExpired(entries []Entry, expiry func(serial *big.Int) (time.Time, bool), cutoff time.Time) []Entry {
	var out []Entry
	for _, e := range entries {
		exp, ok := expiry(e.Serial)
		if ok && exp.Before(cutoff) {
			continue
		}
		out = append(out, e)
	}
	return out
}
