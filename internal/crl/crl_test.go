package crl

import (
	"bytes"
	cryptorand "crypto/rand"
	"crypto/x509"
	"encoding/asn1"
	"math/big"
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/pki"
	"github.com/netmeasure/muststaple/internal/pkixutil"
)

var (
	thisUpdate = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	nextUpdate = thisUpdate.Add(7 * 24 * time.Hour)
)

func newCA(t testing.TB) *pki.CA {
	t.Helper()
	ca, err := pki.NewRootCA(pki.Config{Name: "CRL Test Root", CRLURL: "http://crl.test.example/root.crl"})
	if err != nil {
		t.Fatalf("NewRootCA: %v", err)
	}
	return ca
}

func TestCreateParseRoundTrip(t *testing.T) {
	ca := newCA(t)
	list := &CRL{
		ThisUpdate: thisUpdate,
		NextUpdate: nextUpdate,
		Number:     big.NewInt(42),
		Entries: []Entry{
			{Serial: big.NewInt(333), RevokedAt: thisUpdate.Add(-72 * time.Hour), Reason: pkixutil.ReasonKeyCompromise},
			{Serial: big.NewInt(111), RevokedAt: thisUpdate.Add(-24 * time.Hour), Reason: pkixutil.ReasonAbsent},
			{Serial: big.NewInt(222), RevokedAt: thisUpdate.Add(-48 * time.Hour), Reason: pkixutil.ReasonCessationOfOperation},
		},
	}
	der, err := Create(ca.Certificate, ca.Key, list, CreateOptions{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := Parse(der)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !got.ThisUpdate.Equal(thisUpdate) || !got.NextUpdate.Equal(nextUpdate) {
		t.Errorf("validity window [%v, %v], want [%v, %v]", got.ThisUpdate, got.NextUpdate, thisUpdate, nextUpdate)
	}
	if got.Number == nil || got.Number.Int64() != 42 {
		t.Errorf("CRL number = %v, want 42", got.Number)
	}
	if len(got.Entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(got.Entries))
	}
	// Entries must come back sorted by serial.
	for i, want := range []int64{111, 222, 333} {
		if got.Entries[i].Serial.Int64() != want {
			t.Errorf("entry %d serial = %v, want %d", i, got.Entries[i].Serial, want)
		}
	}
	if got.Entries[0].Reason != pkixutil.ReasonAbsent {
		t.Errorf("entry 111 reason = %v, want absent", got.Entries[0].Reason)
	}
	if got.Entries[2].Reason != pkixutil.ReasonKeyCompromise {
		t.Errorf("entry 333 reason = %v, want keyCompromise", got.Entries[2].Reason)
	}
	if !bytes.Equal(got.RawIssuer, ca.Certificate.RawSubject) {
		t.Error("issuer mismatch")
	}
	if err := got.CheckSignatureFrom(ca.Certificate); err != nil {
		t.Errorf("CheckSignatureFrom: %v", err)
	}
}

func TestParseableByStdlib(t *testing.T) {
	// Our DER must also be parseable by crypto/x509 — a strong
	// cross-check of the encoder against an independent implementation.
	ca := newCA(t)
	list := &CRL{
		ThisUpdate: thisUpdate,
		NextUpdate: nextUpdate,
		Number:     big.NewInt(7),
		Entries: []Entry{
			{Serial: big.NewInt(99), RevokedAt: thisUpdate.Add(-time.Hour), Reason: pkixutil.ReasonSuperseded},
			{Serial: big.NewInt(100), RevokedAt: thisUpdate.Add(-time.Hour), Reason: pkixutil.ReasonAbsent},
		},
	}
	der, err := Create(ca.Certificate, ca.Key, list, CreateOptions{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	rl, err := x509.ParseRevocationList(der)
	if err != nil {
		t.Fatalf("x509.ParseRevocationList rejects our DER: %v", err)
	}
	if err := rl.CheckSignatureFrom(ca.Certificate); err != nil {
		t.Fatalf("stdlib signature check: %v", err)
	}
	if len(rl.RevokedCertificateEntries) != 2 {
		t.Fatalf("stdlib sees %d entries, want 2", len(rl.RevokedCertificateEntries))
	}
	if rl.RevokedCertificateEntries[0].ReasonCode != int(pkixutil.ReasonSuperseded) {
		t.Errorf("stdlib reason = %d, want %d", rl.RevokedCertificateEntries[0].ReasonCode, pkixutil.ReasonSuperseded)
	}
	if rl.Number.Int64() != 7 {
		t.Errorf("stdlib CRL number = %v, want 7", rl.Number)
	}
}

func TestParseStdlibGenerated(t *testing.T) {
	// And the converse: we must parse stdlib-generated CRLs.
	ca := newCA(t)
	tmpl := &x509.RevocationList{
		Number:     big.NewInt(55),
		ThisUpdate: thisUpdate,
		NextUpdate: nextUpdate,
		RevokedCertificateEntries: []x509.RevocationListEntry{
			{SerialNumber: big.NewInt(1234), RevocationTime: thisUpdate.Add(-time.Hour), ReasonCode: int(pkixutil.ReasonKeyCompromise)},
		},
	}
	der, err := x509.CreateRevocationList(nil, tmpl, ca.Certificate, ca.Key)
	if err != nil {
		t.Fatalf("x509.CreateRevocationList: %v", err)
	}
	got, err := Parse(der)
	if err != nil {
		t.Fatalf("Parse of stdlib CRL: %v", err)
	}
	if len(got.Entries) != 1 || got.Entries[0].Serial.Int64() != 1234 {
		t.Fatalf("entries = %+v", got.Entries)
	}
	if got.Entries[0].Reason != pkixutil.ReasonKeyCompromise {
		t.Errorf("reason = %v, want keyCompromise", got.Entries[0].Reason)
	}
	if err := got.CheckSignatureFrom(ca.Certificate); err != nil {
		t.Errorf("CheckSignatureFrom: %v", err)
	}
}

func TestEmptyCRL(t *testing.T) {
	// CAs must publish CRLs regularly even when nothing is revoked.
	ca := newCA(t)
	list := &CRL{ThisUpdate: thisUpdate, NextUpdate: nextUpdate}
	der, err := Create(ca.Certificate, ca.Key, list, CreateOptions{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := Parse(der)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(got.Entries) != 0 {
		t.Fatalf("empty CRL has %d entries", len(got.Entries))
	}
	if got.Find(big.NewInt(1)) != nil {
		t.Error("Find on empty CRL should return nil")
	}
}

func TestFind(t *testing.T) {
	ca := newCA(t)
	var entries []Entry
	for i := int64(0); i < 100; i++ {
		entries = append(entries, Entry{Serial: big.NewInt(i * 3), RevokedAt: thisUpdate, Reason: pkixutil.ReasonAbsent})
	}
	der, err := Create(ca.Certificate, ca.Key, &CRL{ThisUpdate: thisUpdate, NextUpdate: nextUpdate, Entries: entries}, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if got.Find(big.NewInt(i*3)) == nil {
			t.Fatalf("Find(%d) missed a revoked serial", i*3)
		}
		if got.Find(big.NewInt(i*3+1)) != nil {
			t.Fatalf("Find(%d) matched a non-revoked serial", i*3+1)
		}
	}
}

func TestValidAt(t *testing.T) {
	c := &CRL{ThisUpdate: thisUpdate, NextUpdate: nextUpdate}
	if c.ValidAt(thisUpdate.Add(-time.Second)) {
		t.Error("valid before thisUpdate")
	}
	if !c.ValidAt(thisUpdate) || !c.ValidAt(nextUpdate) {
		t.Error("boundaries should be valid")
	}
	if c.ValidAt(nextUpdate.Add(time.Second)) {
		t.Error("valid after nextUpdate")
	}
	// Missing nextUpdate: never expires.
	c2 := &CRL{ThisUpdate: thisUpdate}
	if !c2.ValidAt(thisUpdate.AddDate(20, 0, 0)) {
		t.Error("CRL without nextUpdate should never expire")
	}
}

func TestTamperedSignature(t *testing.T) {
	ca := newCA(t)
	der, err := Create(ca.Certificate, ca.Key, &CRL{ThisUpdate: thisUpdate, NextUpdate: nextUpdate}, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	got.Signature[0] ^= 0xff
	if err := got.CheckSignatureFrom(ca.Certificate); err == nil {
		t.Error("tampered CRL signature must not verify")
	}
}

func TestWrongIssuerSignature(t *testing.T) {
	ca := newCA(t)
	other := newCA(t)
	der, err := Create(ca.Certificate, ca.Key, &CRL{ThisUpdate: thisUpdate, NextUpdate: nextUpdate}, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.CheckSignatureFrom(other.Certificate); err == nil {
		t.Error("CRL must not verify under an unrelated CA")
	}
}

func TestPruneExpired(t *testing.T) {
	cutoff := thisUpdate
	expiries := map[int64]time.Time{
		1: thisUpdate.Add(-time.Hour),   // expired — should be pruned
		2: thisUpdate.Add(time.Hour),    // still valid
		3: thisUpdate.Add(-time.Minute), // expired — pruned
	}
	entries := []Entry{
		{Serial: big.NewInt(1), RevokedAt: thisUpdate},
		{Serial: big.NewInt(2), RevokedAt: thisUpdate},
		{Serial: big.NewInt(3), RevokedAt: thisUpdate},
		{Serial: big.NewInt(4), RevokedAt: thisUpdate}, // unknown expiry — kept
	}
	got := PruneExpired(entries, func(s *big.Int) (time.Time, bool) {
		e, ok := expiries[s.Int64()]
		return e, ok
	}, cutoff)
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2 (serials 2 and 4)", len(got))
	}
	if got[0].Serial.Int64() != 2 || got[1].Serial.Int64() != 4 {
		t.Errorf("kept serials %v, %v; want 2, 4", got[0].Serial, got[1].Serial)
	}
}

func TestCreateErrors(t *testing.T) {
	ca := newCA(t)
	if _, err := Create(nil, ca.Key, &CRL{ThisUpdate: thisUpdate}, CreateOptions{}); err == nil {
		t.Error("nil issuer should fail")
	}
	if _, err := Create(ca.Certificate, ca.Key, &CRL{}, CreateOptions{}); err == nil {
		t.Error("zero thisUpdate should fail")
	}
	if _, err := Parse([]byte("garbage")); err == nil {
		t.Error("Parse of garbage should fail")
	}
}

func TestParseUnsortedCRL(t *testing.T) {
	// Issuers are not obliged to emit entries in serial order. Create
	// always sorts, so hand-assemble the wire form with out-of-order
	// serials and check that Parse records the violated invariant and
	// Find still answers correctly via the linear path.
	ca := newCA(t)
	sigAlg, err := pkixutil.SignatureAlgorithmForKey(ca.Key)
	if err != nil {
		t.Fatal(err)
	}
	tbs := tbsCertListASN1{
		Version:    1,
		Signature:  sigAlg,
		Issuer:     asn1.RawValue{FullBytes: ca.Certificate.RawSubject},
		ThisUpdate: thisUpdate,
		NextUpdate: nextUpdate,
		RevokedCertificates: []revokedCertASN1{
			{Serial: big.NewInt(300), RevokedAt: thisUpdate},
			{Serial: big.NewInt(100), RevokedAt: thisUpdate},
			{Serial: big.NewInt(200), RevokedAt: thisUpdate},
		},
	}
	tbsDER, err := asn1.Marshal(tbs)
	if err != nil {
		t.Fatal(err)
	}
	alg, sig, err := pkixutil.SignTBS(cryptorand.Reader, ca.Key, tbsDER)
	if err != nil {
		t.Fatal(err)
	}
	der, err := asn1.Marshal(certificateListASN1{
		TBSCertList:        asn1.RawValue{FullBytes: tbsDER},
		SignatureAlgorithm: alg,
		Signature:          asn1.BitString{Bytes: sig, BitLength: len(sig) * 8},
	})
	if err != nil {
		t.Fatal(err)
	}

	got, err := Parse(der)
	if err != nil {
		t.Fatalf("Parse of unsorted CRL: %v", err)
	}
	if got.sortedState != sortednessUnsorted {
		t.Fatalf("sortedState = %d, want sortednessUnsorted", got.sortedState)
	}
	// Wire order must be preserved, not silently re-sorted.
	for i, want := range []int64{300, 100, 200} {
		if got.Entries[i].Serial.Int64() != want {
			t.Errorf("entry %d serial = %v, want %d", i, got.Entries[i].Serial, want)
		}
	}
	for _, s := range []int64{100, 200, 300} {
		if got.Find(big.NewInt(s)) == nil {
			t.Errorf("Find(%d) missed a revoked serial in an unsorted CRL", s)
		}
	}
	// Misses that a naive binary search over unsorted entries would get
	// wrong: 150 sits "between" wire positions, 250 past the first entry.
	for _, s := range []int64{150, 250, 99, 301} {
		if got.Find(big.NewInt(s)) != nil {
			t.Errorf("Find(%d) matched a non-revoked serial", s)
		}
	}
	if err := got.CheckSignatureFrom(ca.Certificate); err != nil {
		t.Errorf("CheckSignatureFrom: %v", err)
	}
}

func TestFindHandBuiltLazySortedness(t *testing.T) {
	// Lists assembled in code (not via Parse/Create) verify the sort
	// invariant lazily on first Find, then cache the answer.
	sorted := &CRL{Entries: []Entry{
		{Serial: big.NewInt(1), RevokedAt: thisUpdate},
		{Serial: big.NewInt(5), RevokedAt: thisUpdate},
		{Serial: big.NewInt(9), RevokedAt: thisUpdate},
	}}
	if sorted.sortedState != sortednessUnknown {
		t.Fatalf("fresh list sortedState = %d, want unknown", sorted.sortedState)
	}
	if sorted.Find(big.NewInt(5)) == nil || sorted.Find(big.NewInt(4)) != nil {
		t.Error("Find wrong on sorted hand-built list")
	}
	if sorted.sortedState != sortednessSorted {
		t.Errorf("sortedState = %d after Find, want sorted", sorted.sortedState)
	}

	unsorted := &CRL{Entries: []Entry{
		{Serial: big.NewInt(9), RevokedAt: thisUpdate},
		{Serial: big.NewInt(1), RevokedAt: thisUpdate},
	}}
	if unsorted.Find(big.NewInt(1)) == nil || unsorted.Find(big.NewInt(2)) != nil {
		t.Error("Find wrong on unsorted hand-built list")
	}
	if unsorted.sortedState != sortednessUnsorted {
		t.Errorf("sortedState = %d after Find, want unsorted", unsorted.sortedState)
	}
}

// BenchmarkCRLFindMiss is the miss-heavy access pattern of the §5.4
// consistency study: most queried serials are absent from the list. Before
// the sortedness cache every miss paid a full linear scan on top of the
// binary search.
func BenchmarkCRLFindMiss(b *testing.B) {
	ca := newCA(b)
	entries := make([]Entry, 0, 4096)
	for i := int64(0); i < 4096; i++ {
		entries = append(entries, Entry{Serial: big.NewInt(i * 2), RevokedAt: thisUpdate})
	}
	der, err := Create(ca.Certificate, ca.Key, &CRL{ThisUpdate: thisUpdate, NextUpdate: nextUpdate, Entries: entries}, CreateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	c, err := Parse(der)
	if err != nil {
		b.Fatal(err)
	}
	misses := make([]*big.Int, 64)
	for i := range misses {
		misses[i] = big.NewInt(int64(i)*128 + 1) // odd: never revoked
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Find(misses[i%len(misses)]) != nil {
			b.Fatal("miss serial found")
		}
	}
}
