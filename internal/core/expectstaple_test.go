package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/world"
)

// expectStapleConfig: the expectstaple experiment needs the full-size
// fleet (the quality-defect and malformed pools thin out in tiny
// fleets), but a short campaign window keeps the test fast.
func expectStapleConfig(buildWorkers int) world.Config {
	cfg := tinyConfig()
	cfg.Responders = 0 // world default (full paper fleet)
	cfg.Start = time.Date(2018, 4, 25, 0, 0, 0, 0, time.UTC)
	cfg.End = time.Date(2018, 4, 28, 0, 0, 0, 0, time.UTC)
	cfg.BuildWorkers = buildWorkers
	return cfg
}

func runExpectStapleOnce(t *testing.T, buildWorkers int) string {
	t.Helper()
	var sb strings.Builder
	r := NewRunner(expectStapleConfig(buildWorkers), &sb)
	if err := r.Run(context.Background(), "expectstaple"); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunExpectStaple(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full-size fleet")
	}
	out := runExpectStapleOnce(t, 0)
	for _, want := range []string{
		"Expect-Staple", "detection latency",
		"always-dead-responder", "event-outage", "expired-window",
		"malformed-responder", "outage-staleness", "revoked-but-served",
		"healthy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The healthy control must never be reported.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "www.healthysite.test") && !strings.Contains(line, "never") {
			t.Errorf("healthy site was reported: %s", line)
		}
	}
}

// stripTimingLines drops the wall-clock accounting lines (world build
// banner, per-experiment timer) that legitimately vary run to run.
func stripTimingLines(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "[world built") || strings.HasPrefix(trimmed, "[expectstaple:") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestExpectStapleDeterministicAcrossWorkers is the experiment-level
// determinism gate: identical rendered output regardless of worker
// count, once the wall-clock timing lines are stripped.
func TestExpectStapleDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full-size fleet twice")
	}
	a := stripTimingLines(runExpectStapleOnce(t, 1))
	b := stripTimingLines(runExpectStapleOnce(t, 4))
	if a != b {
		t.Fatalf("output differs between 1 and 4 workers:\n--- workers=1\n%s\n--- workers=4\n%s", a, b)
	}
}
