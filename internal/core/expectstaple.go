package core

import (
	"context"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"time"

	"github.com/netmeasure/muststaple/internal/expectstaple"
	"github.com/netmeasure/muststaple/internal/netsim"
	"github.com/netmeasure/muststaple/internal/pki"
	"github.com/netmeasure/muststaple/internal/pkixutil"
	"github.com/netmeasure/muststaple/internal/report"
	"github.com/netmeasure/muststaple/internal/responder"
	"github.com/netmeasure/muststaple/internal/store"
	"github.com/netmeasure/muststaple/internal/webserver"
	"github.com/netmeasure/muststaple/internal/world"
)

// The Expect-Staple telemetry experiment: seven sites — one per
// stapling-misconfiguration class the world's responder fleet and §5.2
// event schedule can produce, plus a healthy control — advertise the
// Expect-Staple header, a simulated UA fleet visits them hourly, and a
// report collector ingests the resulting violation reports. The rendered
// table answers how long after each misconfiguration's onset telemetry
// would have flagged it.
const (
	expectStapleReportHost = "reports.telemetry.test"
	expectStapleReportURI  = "http://" + expectStapleReportHost + "/expect-staple"
)

func (r *Runner) runExpectStaple(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	w, err := r.freshWorld()
	if err != nil {
		return err
	}

	// The report log persists every accepted report in arrival order —
	// under StoreDir when configured, else in a scratch directory that
	// lives only for the analysis pass.
	dir := ""
	if r.StoreDir != "" {
		dir = filepath.Join(r.StoreDir, "expectstaple")
	} else {
		tmp, err := os.MkdirTemp("", "expectstaple-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	log, err := store.CreateReportLog(dir)
	if err != nil {
		return err
	}
	collector := expectstaple.NewCollector(
		expectstaple.WithSink(log),
		expectstaple.WithCollectorMetrics(r.registry()),
	)
	w.Network.RegisterHost(expectStapleReportHost, "", collector)

	sites, err := buildExpectStapleSites(w)
	if err != nil {
		return err
	}
	if len(sites) < 5 {
		return fmt.Errorf("core: fleet too small for the expectstaple experiment (%d site classes, need >= 5)", len(sites))
	}

	// The fleet always visits hourly regardless of the world's stride
	// (like the impact campaign): detection latency is the measurement,
	// so the handshake grid must resolve the event schedule's hours.
	stats, err := expectstaple.RunSim(w.Clock, w.Network, sites, expectstaple.SimConfig{
		Seed:    w.Config.Seed,
		Start:   w.Config.Start,
		End:     w.Config.End,
		Stride:  time.Hour,
		Workers: w.Config.BuildWorkers,
	})
	collector.Close()
	if cerr := log.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	// Stream the persisted log back through the detection accumulator —
	// the analysis reads what the collector durably wrote, not what the
	// sim thinks it sent.
	det := report.NewStapleDetection(10)
	if err := store.ScanReportLog(dir, func(payload []byte) error {
		rep, err := expectstaple.DecodeReport(payload)
		if err != nil {
			return err
		}
		det.Fold(rep)
		return nil
	}); err != nil {
		return err
	}

	summaries := make([]report.StapleSite, len(sites))
	for i, s := range sites {
		summaries[i] = report.StapleSite{Host: s.Host, Class: s.Class, Onset: s.Onset}
	}
	report.ExpectStaple(r.Out, det, summaries, stats)
	return nil
}

// buildExpectStapleSites assembles one site per misconfiguration class
// from the world's responder fleet. A class whose responder the (small,
// test-sized) fleet does not contain is skipped; the default fleet has
// all seven.
func buildExpectStapleSites(w *world.World) ([]*expectstaple.Site, error) {
	vantages := netsim.PaperVantages()
	byName := func(name string) netsim.Vantage {
		for _, v := range vantages {
			if v.Name == name {
				return v
			}
		}
		return vantages[0]
	}

	find := func(pred func(*world.ResponderInfo) bool) *world.ResponderInfo {
		for _, info := range w.Responders {
			if pred(info) {
				return info
			}
		}
		return nil
	}

	var healthySeen int
	type siteSpec struct {
		class   string
		host    string
		vantage netsim.Vantage
		policy  webserver.Policy
		enforce bool
		revoke  bool
		onset   time.Time
		info    *world.ResponderInfo
	}
	specs := []siteSpec{
		{
			// The responder is dead from day one; Apache drops its
			// cache on every failed refresh, so every handshake after
			// the first is stapleless.
			class:   "always-dead-responder",
			host:    "shop.deadca.test",
			vantage: byName("Oregon"),
			policy:  webserver.ApachePolicy(),
			enforce: true,
			onset:   w.Config.Start,
			info:    find(func(i *world.ResponderInfo) bool { return i.Kind == world.KindAlwaysDead }),
		},
		{
			// The §5.2 Comodo backend outage (Apr 25 19:00–21:00 from
			// Oregon): Apache's hourly refresh fails during the window
			// and the cache is dropped — a transient missing-staple
			// burst exactly bracketing the event.
			class:   "event-outage",
			host:    "news.comodosite.test",
			vantage: byName("Oregon"),
			policy:  webserver.ApachePolicy(),
			onset:   time.Date(2018, 4, 25, 19, 0, 0, 0, time.UTC),
			info:    find(func(i *world.ResponderInfo) bool { return i.Host == "ocsp.comodoca.test" }),
		},
		{
			// Wayport's growing DNS outages end in a permanent failure
			// on May 25; the serve-stale CDN tier keeps stapling its
			// last response long past nextUpdate.
			class:   "outage-staleness",
			host:    "cdn.wayportsite.test",
			vantage: byName("Virginia"),
			policy:  webserver.StaleServingCDNPolicy(),
			onset:   time.Date(2018, 5, 25, 0, 0, 0, 0, time.UTC),
			info:    find(func(i *world.ResponderInfo) bool { return i.Host == "ocsp.wayport.test:2560" }),
		},
		{
			// A persistently malformed responder: Apache caches the
			// garbage body as an error staple and serves it.
			class:   "malformed-responder",
			host:    "api.garbleca.test",
			vantage: byName("Paris"),
			policy:  webserver.ApachePolicy(),
			onset:   w.Config.Start,
			info: find(func(i *world.ResponderInfo) bool {
				// An empty malformed body staples as nothing (missing,
				// not malformed); pick a responder serving actual
				// garbage bytes so the class shows its own signature.
				return i.Kind == world.KindMalformed && len(i.Profile.MalformedWindows) == 0 &&
					i.Profile.Malformed != responder.MalformedNone &&
					i.Profile.Malformed != responder.MalformedEmpty
			}),
		},
		{
			// The certificate was revoked a month before the campaign,
			// but the site staples the (validly signed) Revoked
			// response anyway.
			class:   "revoked-but-served",
			host:    "legacy.revokedsite.test",
			vantage: byName("Virginia"),
			policy:  webserver.NginxPolicy(),
			enforce: true,
			revoke:  true,
			onset:   w.Config.Start,
			info: find(func(i *world.ResponderInfo) bool {
				if i.Kind != world.KindHealthy {
					return false
				}
				healthySeen++
				return healthySeen == 1
			}),
		},
		{
			// A quality-defect responder signing windows that open five
			// minutes in the future: every freshly fetched staple is
			// not yet valid at the handshake that fetched it.
			class:   "expired-window",
			host:    "blog.futuredate.test",
			vantage: byName("Sydney"),
			policy:  webserver.ApachePolicy(),
			onset:   w.Config.Start,
			info: find(func(i *world.ResponderInfo) bool {
				return i.Kind == world.KindQualityDefect && i.Profile.ThisUpdateOffset < 0
			}),
		},
		{
			// Control: healthy responder, correct policy — the fleet
			// should never report it.
			class:   "healthy",
			host:    "www.healthysite.test",
			vantage: byName("Oregon"),
			policy:  webserver.CorrectPolicy(),
			info: find(func(i *world.ResponderInfo) bool {
				if i.Kind != world.KindHealthy {
					return false
				}
				healthySeen++
				return healthySeen == 4 // distinct from the revoked site's pick
			}),
		},
	}

	var sites []*expectstaple.Site
	for _, spec := range specs {
		if spec.info == nil {
			continue
		}
		site, err := buildExpectStapleSite(w, spec.host, spec.class, spec.vantage, spec.policy, spec.enforce, spec.revoke, spec.onset, spec.info)
		if err != nil {
			return nil, fmt.Errorf("core: expectstaple site %s: %w", spec.host, err)
		}
		sites = append(sites, site)
	}
	return sites, nil
}

func buildExpectStapleSite(w *world.World, host, class string, vantage netsim.Vantage, policy webserver.Policy, enforce, revoke bool, onset time.Time, info *world.ResponderInfo) (*expectstaple.Site, error) {
	// Serials are partitioned per responder (SerialBase = index * 1e6);
	// the +500_000 offset keeps site leaves clear of the probe targets.
	serial := big.NewInt(int64(info.Index)*1_000_000 + 500_000)
	leaf, err := info.CA.IssueLeaf(pki.LeafOptions{
		DNSNames:   []string{host},
		NotBefore:  w.Config.Start.AddDate(0, -1, 0),
		NotAfter:   w.Config.End.AddDate(0, 1, 0),
		MustStaple: true,
		Serial:     serial,
	})
	if err != nil {
		return nil, err
	}
	info.DB.AddIssued(serial, leaf.Certificate.NotAfter)
	if revoke {
		info.DB.Revoke(serial, w.Config.Start.AddDate(0, -1, 0), pkixutil.ReasonKeyCompromise)
	}
	fetch, err := expectstaple.NetworkFetcher(w.Network, vantage, w.Clock, leaf)
	if err != nil {
		return nil, err
	}
	engine := webserver.NewEngine(leaf, policy, fetch, w.Clock)
	engine.ExpectStaple = &webserver.ExpectStaple{
		MaxAge:    7 * 24 * time.Hour,
		ReportURI: expectStapleReportURI,
		Enforce:   enforce,
	}
	// Prefetching policies fill their cache now; a failed prefetch is
	// part of the misconfiguration under measurement, not an error.
	_ = engine.Start()
	return &expectstaple.Site{
		Host:    host,
		Class:   class,
		Vantage: vantage,
		Engine:  engine,
		Onset:   onset,
	}, nil
}
