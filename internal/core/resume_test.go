package core

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/report"
	"github.com/netmeasure/muststaple/internal/scanner"
	"github.com/netmeasure/muststaple/internal/store"
	"github.com/netmeasure/muststaple/internal/world"
)

// resumeConfig is a campaign big enough to cross several checkpoints and
// segment flushes but quick enough for tier-1.
func resumeConfig() world.Config {
	return world.Config{
		Seed:              7,
		Responders:        60,
		CertsPerResponder: 1,
		Start:             time.Date(2018, 4, 25, 0, 0, 0, 0, time.UTC),
		End:               time.Date(2018, 4, 26, 12, 0, 0, 0, time.UTC),
		Stride:            time.Hour,
		AlexaDomains:      1_000,
	}
}

// filterWallClock drops the output lines that legitimately differ between
// two identical campaigns: wall-time accounting ("[...]" lines) and the
// engine stats line carrying wall-clock latency and queue depth.
func filterWallClock(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "[") || strings.Contains(line, "round-latency-mean") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// storeLog streams a campaign store into an ObservationLog for byte-level
// stream comparison.
func storeLog(t *testing.T, dir string) *scanner.ObservationLog {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	defer st.Close()
	log := scanner.NewObservationLog()
	if _, err := report.StreamInto(st.Reader(), log); err != nil {
		t.Fatalf("StreamInto(%s): %v", dir, err)
	}
	return log
}

// TestResumeReproducesUninterruptedRun is the PR's acceptance test: a
// campaign interrupted mid-round by the store's crash failpoint and then
// resumed with -resume must leave a byte-identical observation stream and
// render byte-identical figures compared to the same campaign run
// uninterrupted.
func TestResumeReproducesUninterruptedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three measurement campaigns")
	}
	cfg := resumeConfig()

	// Uninterrupted reference run.
	fullDir := t.TempDir()
	var fullOut strings.Builder
	full := NewRunner(cfg, &fullOut)
	full.StoreDir = fullDir
	if err := full.Run(context.Background(), "fig3"); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	// Crashed run: the failpoint kills the 20th round mid-append.
	crashDir := t.TempDir()
	var crashOut strings.Builder
	crashed := NewRunner(cfg, &crashOut)
	crashed.StoreDir = crashDir
	crashed.CrashAfterRounds = 20
	err := crashed.Run(context.Background(), "fig3")
	if !errors.Is(err, store.ErrSimulatedCrash) {
		t.Fatalf("crash run error = %v, want ErrSimulatedCrash", err)
	}

	// Resumed run over the crashed store.
	var resumeOut strings.Builder
	resumed := NewRunner(cfg, &resumeOut)
	resumed.StoreDir = crashDir
	resumed.Resume = true
	if err := resumed.Run(context.Background(), "fig3"); err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	// The persisted observation streams must be byte-identical.
	fullLog := storeLog(t, filepath.Join(fullDir, "hourly"))
	resumedLog := storeLog(t, filepath.Join(crashDir, "hourly"))
	if fullLog.Len() == 0 {
		t.Fatal("uninterrupted store is empty")
	}
	if d := fullLog.Diff(resumedLog); d != "" {
		t.Errorf("stores diverge: %s", d)
	}

	// The rendered figures (and engine class counts) must match too.
	if got, want := filterWallClock(resumeOut.String()), filterWallClock(fullOut.String()); got != want {
		t.Errorf("rendered output diverges\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, got)
	}
}

// TestStoreRefusesSilentOverwrite: pointing -store at a directory that
// already holds a campaign without -resume must fail loudly instead of
// appending garbage.
func TestStoreRefusesSilentOverwrite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a measurement campaign")
	}
	cfg := resumeConfig()
	dir := t.TempDir()
	var out strings.Builder
	first := NewRunner(cfg, &out)
	first.StoreDir = dir
	if err := first.Run(context.Background(), "fig3"); err != nil {
		t.Fatalf("first run: %v", err)
	}
	again := NewRunner(cfg, &out)
	again.StoreDir = dir
	err := again.Run(context.Background(), "fig3")
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("second run without -resume = %v, want a pass-resume error", err)
	}
}

// TestResumeCompletedCampaignIsReplayOnly: resuming a fully persisted
// campaign rescans nothing and still renders identical figures.
func TestResumeCompletedCampaignIsReplayOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two measurement campaigns")
	}
	cfg := resumeConfig()
	// Shrink: this case only needs completeness, not checkpoint spread.
	cfg.End = cfg.Start.Add(8 * time.Hour)
	cfg.Responders = 30

	dir := t.TempDir()
	var firstOut strings.Builder
	first := NewRunner(cfg, &firstOut)
	first.StoreDir = dir
	if err := first.Run(context.Background(), "fig3"); err != nil {
		t.Fatalf("first run: %v", err)
	}
	var secondOut strings.Builder
	second := NewRunner(cfg, &secondOut)
	second.StoreDir = dir
	second.Resume = true
	if err := second.Run(context.Background(), "fig3"); err != nil {
		t.Fatalf("replay-only resume: %v", err)
	}
	if got, want := filterWallClock(secondOut.String()), filterWallClock(firstOut.String()); got != want {
		t.Errorf("replay-only output diverges\n--- original ---\n%s\n--- resumed ---\n%s", want, got)
	}
}
