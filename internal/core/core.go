// Package core is the public façade of the reproduction: it wires the
// simulated world, the measurement campaigns, and the report renderers
// into named experiments — one per table and figure of the paper — so that
// cmd/repro, the benchmarks, and downstream users drive everything through
// one API.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"time"

	"github.com/netmeasure/muststaple/internal/browser"
	"github.com/netmeasure/muststaple/internal/census"
	"github.com/netmeasure/muststaple/internal/consistency"
	"github.com/netmeasure/muststaple/internal/impact"
	"github.com/netmeasure/muststaple/internal/metrics"
	"github.com/netmeasure/muststaple/internal/netsim"
	"github.com/netmeasure/muststaple/internal/report"
	"github.com/netmeasure/muststaple/internal/scanner"
	"github.com/netmeasure/muststaple/internal/stats"
	"github.com/netmeasure/muststaple/internal/store"
	"github.com/netmeasure/muststaple/internal/vulnwindow"
	"github.com/netmeasure/muststaple/internal/webserver"
	"github.com/netmeasure/muststaple/internal/world"
)

// Runner executes experiments against one lazily built world.
type Runner struct {
	// Config sizes the world; the zero value (plus Seed) is the default
	// scaled reproduction.
	Config world.Config
	// Out receives the rendered tables and figures.
	Out io.Writer

	// StoreDir, when non-empty, persists every campaign round to a
	// durable observation store under this directory (one subdirectory
	// per campaign: "hourly", "alexa").
	StoreDir string
	// Resume continues an interrupted stored campaign from its last
	// checkpoint: the persisted prefix is replayed through the
	// aggregators and scanning restarts at the following round. The
	// world is rebuilt from the same seed, so the combined run is
	// byte-identical to an uninterrupted one.
	Resume bool
	// CrashAfterRounds arms the store's crash failpoint (see
	// store.Options.CrashAfterRounds) — CI crash-recovery drills only.
	CrashAfterRounds int

	w *world.World

	// Cached campaign results, so "all" runs each campaign once.
	hourly          *hourlyResults
	alexa           *alexaResults
	qualityDone     bool
	consistencyDone bool

	// reg accumulates cross-experiment instrumentation (wall-time
	// histogram, fleet cache counters); worlds tracks every world built
	// so far, so per-experiment cache-stat deltas cover the whole fleet.
	reg    *metrics.Registry
	worlds []*world.World
}

type hourlyResults struct {
	avail    *scanner.AvailabilitySeries
	unusable *scanner.UnusableSeries
	quality  *scanner.QualityAggregator
	respAv   *scanner.ResponderAvailability
	hardFail *impact.HardFail
	latency  *scanner.LatencyAggregator
	scans    int
}

type alexaResults struct {
	impact *scanner.DomainImpact
	scans  int
}

// NewRunner builds a runner.
func NewRunner(cfg world.Config, out io.Writer) *Runner {
	return &Runner{Config: cfg, Out: out}
}

// World returns the built world, building it on first use.
//
// Campaigns never share a world: the simulated clock only moves forward,
// so replaying a second campaign on an already-advanced world would skew
// every time-derived field. freshWorld hands each campaign its own
// identically seeded copy instead.
func (r *Runner) World() (*world.World, error) {
	if r.w == nil {
		w, err := r.buildWorld()
		if err != nil {
			return nil, err
		}
		r.w = w
	}
	return r.w, nil
}

func (r *Runner) freshWorld() (*world.World, error) {
	return r.buildWorld()
}

// buildWorld constructs a world and reports the construction wall time —
// at paper scale the per-responder key generation dominates setup, so the
// build cost is worth surfacing next to each campaign's engine stats. The
// measurement runs through the registry's clock (wall by default), which
// also lands it in the world_build_seconds histogram.
func (r *Runner) buildWorld() (*world.World, error) {
	stop := r.registry().Timer("world_build_seconds", 1, 10, 60, 600)
	w, err := world.Build(r.Config)
	if err != nil {
		return nil, err
	}
	report.WorldBuild(r.Out, stop(), r.Config.BuildWorkers)
	r.worlds = append(r.worlds, w)
	return w, nil
}

// registry returns the runner's metrics registry, creating it on first use
// (runners are also constructed as plain literals in tests).
func (r *Runner) registry() *metrics.Registry {
	if r.reg == nil {
		r.reg = metrics.NewRegistry()
	}
	return r.reg
}

// Metrics snapshots the runner's cross-experiment instrumentation: the
// experiment_wall_seconds histogram and the responder fleet's
// responder_cache_{hits,misses}_total counters.
func (r *Runner) Metrics() metrics.Snapshot {
	return r.registry().Snapshot()
}

// cacheStats sums signed-response cache counters over every world built by
// this runner so far.
func (r *Runner) cacheStats() (hits, misses uint64) {
	for _, w := range r.worlds {
		h, m := w.CacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// Experiments lists the runnable experiment names in presentation order.
func Experiments() []string {
	return []string{
		"sec4", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "ondemand", "table1", "fig10", "table2", "fig11",
		"fig12", "table3", "cdn", "hardfail", "latency", "vulnwindow",
		"expectstaple",
	}
}

// Run executes one named experiment ("all" runs every one). ctx cancels
// in-flight measurement campaigns; the first canceled campaign surfaces
// the context error.
//
// Each experiment is accounted for as it completes: wall time lands in the
// registry's experiment_wall_seconds histogram and the responder fleet's
// cache hit/miss deltas in responder_cache_{hits,misses}_total, and both
// are rendered as a per-experiment stats line.
func (r *Runner) Run(ctx context.Context, name string) error {
	if name == "all" {
		for _, exp := range Experiments() {
			if err := r.Run(ctx, exp); err != nil {
				return fmt.Errorf("core: %s: %w", exp, err)
			}
		}
		return nil
	}
	h0, m0 := r.cacheStats()
	stop := r.registry().Timer("experiment_wall_seconds", 1, 10, 60, 600)
	if err := r.dispatch(ctx, name); err != nil {
		return err
	}
	wall := stop()
	h1, m1 := r.cacheStats()
	r.reg.Counter("responder_cache_hits_total").Add(int64(h1 - h0))
	r.reg.Counter("responder_cache_misses_total").Add(int64(m1 - m0))
	report.ExperimentStats(r.Out, name, wall, h1-h0, m1-m0)
	return nil
}

func (r *Runner) dispatch(ctx context.Context, name string) error {
	switch name {
	case "sec4":
		return r.runSection4()
	case "fig2":
		return r.runFigure2()
	case "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "ondemand", "hardfail", "latency":
		return r.runHourly(ctx, name)
	case "vulnwindow":
		return r.runVulnWindow()
	case "fig4":
		return r.runFigure4(ctx)
	case "table1", "fig10":
		return r.runConsistency(name)
	case "table2":
		return r.runTable2()
	case "fig11":
		return r.runFigure11()
	case "fig12":
		return r.runFigure12()
	case "table3":
		return r.runTable3()
	case "cdn":
		return r.runCDN(ctx)
	case "expectstaple":
		return r.runExpectStaple(ctx)
	default:
		return fmt.Errorf("core: unknown experiment %q (have %v)", name, Experiments())
	}
}

// runSection4 re-measures the §4 headline numbers by streaming the
// world's certificate corpus — generated shard by shard or read back from
// a spill directory, never materialized — through the stats accumulator,
// so a paper-scale (WorldScale 10,000) census runs in the same resident
// set as the default one.
func (r *Runner) runSection4() error {
	w, err := r.World()
	if err != nil {
		return err
	}
	acc := census.NewStatsAccumulator(w.Corpus.ScaleFactor())
	if _, err := report.StreamCertsInto(w.Corpus, acc); err != nil {
		return err
	}
	model, _ := r.alexaModel()
	report.Section4(r.Out, acc.Stats(), model.Stats(), w.AlexaScale)
	return nil
}

// alexaModel builds the streaming Alexa domain model for the runner's
// configuration (WorldScale applied).
func (r *Runner) alexaModel() (*census.AlexaModel, int) {
	cfg := r.Config.Normalized()
	acfg := census.AlexaConfig{Seed: cfg.Seed + 1, Domains: cfg.ScaledAlexaDomains()}
	return census.NewAlexaModel(acfg), acfg.ScaleFactor()
}

func (r *Runner) runFigure2() error {
	model, scale := r.alexaModel()
	binWidth := model.NumDomains() / 100
	https, ocspOfHTTPS := model.Figure2(binWidth)
	report.RankSeries(r.Out, "Figure 2: HTTPS and OCSP adoption vs Alexa rank", scale, map[string][]stats.BinRate{
		"HTTPS":         https,
		"OCSP-of-HTTPS": ocspOfHTTPS,
	})
	return nil
}

func (r *Runner) runFigure11() error {
	model, scale := r.alexaModel()
	binWidth := model.NumDomains() / 100
	report.RankSeries(r.Out, "Figure 11: OCSP Stapling adoption vs Alexa rank", scale, map[string][]stats.BinRate{
		"Stapling-of-OCSP": model.Figure11(binWidth),
	})
	return nil
}

func (r *Runner) runFigure12() error {
	report.Figure12(r.Out, census.GenerateHistory(r.Config.Seed))
	return nil
}

// openCampaignStore opens the durable observation store for one campaign
// (a subdirectory of StoreDir) and derives the campaign options wiring it
// in: the per-round sink always; on resume, additionally the replay of
// the persisted prefix and a window that restarts scanning at the round
// after the last checkpoint. Returns (nil, nil, nil) when no store is
// configured. The caller owns the returned store and must Close it after
// the campaign.
func (r *Runner) openCampaignStore(sub string, end time.Time, stride time.Duration) (*store.Store, []scanner.Option, error) {
	if r.StoreDir == "" {
		return nil, nil, nil
	}
	dir := filepath.Join(r.StoreDir, sub)
	st, err := store.Open(dir, store.Options{
		Metrics:          r.registry(),
		CrashAfterRounds: r.CrashAfterRounds,
	})
	if err != nil {
		return nil, nil, err
	}
	opts := []scanner.Option{scanner.WithStore(st)}
	stats := st.Stats()
	if stats.Rounds == 0 && stats.Records == 0 {
		// A fresh store; resuming nothing just runs from the start.
		return st, opts, nil
	}
	if !r.Resume {
		err := fmt.Errorf("core: store %s already holds %d rounds; pass -resume to continue it or use a fresh -store directory", dir, stats.Rounds)
		return nil, nil, errors.Join(err, st.Close())
	}
	ck, ok := st.LastCheckpoint()
	if !ok {
		// Records but no checkpoint: the campaign died before its first
		// checkpoint landed. Nothing is resumable — cut back to empty
		// and rescan the whole window.
		first := st.Rounds()
		if err := st.TruncateAfter(first[0] - 1); err != nil {
			return nil, nil, errors.Join(err, st.Close())
		}
		return st, opts, nil
	}
	// Discard any partially persisted round past the checkpoint, replay
	// everything up to it, and scan on from the next round. The replay
	// restores aggregator state and engine counters exactly, so the
	// resumed run's output matches an uninterrupted one.
	if err := st.TruncateAfter(ck.Round); err != nil {
		return nil, nil, errors.Join(err, st.Close())
	}
	resumeAt := time.Unix(0, ck.Round).UTC().Add(stride)
	if resumeAt.After(end) {
		resumeAt = end // fully persisted campaign: replay only, no scans
	}
	opts = append(opts,
		scanner.WithReplay(st.Reader().Scan, ck.Rounds),
		scanner.WithWindow(resumeAt, end),
	)
	return st, opts, nil
}

// closeStore folds a store's Close error into a campaign error (a store
// that cannot make its tail durable is a failed campaign, even when the
// scans themselves succeeded).
func closeStore(st *store.Store, err error) error {
	if st == nil {
		return err
	}
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	return err
}

// ensureHourly runs the Hourly-dataset campaign once, attaching every
// aggregator Figures 3 and 5–9 need.
func (r *Runner) ensureHourly(ctx context.Context) (*hourlyResults, error) {
	if r.hourly != nil {
		return r.hourly, nil
	}
	w, err := r.freshWorld()
	if err != nil {
		return nil, err
	}
	res := &hourlyResults{
		avail:    scanner.NewAvailabilitySeries(w.Config.Stride),
		unusable: scanner.NewUnusableSeries(w.Config.Stride),
		quality:  scanner.NewQualityAggregator(),
		respAv:   scanner.NewResponderAvailability(),
		hardFail: impact.NewHardFail(),
		latency:  scanner.NewLatencyAggregator(),
	}
	st, storeOpts, err := r.openCampaignStore("hourly", w.Config.End, w.Config.Stride)
	if err != nil {
		return nil, err
	}
	opts := append([]scanner.Option{
		scanner.WithTargets(w.Targets...),
		scanner.WithWindow(w.Config.Start, w.Config.End),
		scanner.WithStride(w.Config.Stride),
	}, storeOpts...)
	camp, err := scanner.NewCampaign(&scanner.Client{Transport: w.Network}, w.Clock, opts...)
	if err != nil {
		return nil, closeStore(st, err)
	}
	if st != nil {
		st.SetCheckpointPayload(func() []byte { return []byte(camp.Stats().String()) })
	}
	n, err := camp.Run(ctx, res.avail, res.unusable, res.quality, res.respAv, res.hardFail, res.latency)
	if err = closeStore(st, err); err != nil {
		return nil, err
	}
	res.scans = n
	report.CampaignStats(r.Out, "Hourly campaign", camp.Stats())
	r.hourly = res
	return res, nil
}

func (r *Runner) runHourly(ctx context.Context, name string) error {
	res, err := r.ensureHourly(ctx)
	if err != nil {
		return err
	}
	switch name {
	case "fig3":
		report.Figure3(r.Out, res.avail, 28)
		report.AvailabilitySummary(r.Out, res.respAv)
	case "fig5":
		report.Figure5(r.Out, res.unusable)
	case "hardfail":
		report.HardFail(r.Out, res.hardFail.Results())
	case "latency":
		report.Latency(r.Out, res.latency)
	case "fig6", "fig7", "fig8", "fig9", "ondemand":
		// Figures 6–9 and the on-demand analysis render as one block
		// (they come from the same aggregator); emit it once per
		// runner even when several of them are requested.
		if !r.qualityDone {
			report.Quality(r.Out, res.quality)
			r.qualityDone = true
		}
	}
	return nil
}

// ensureAlexa runs the Figure 4 impact campaign.
func (r *Runner) ensureAlexa(ctx context.Context) (*alexaResults, error) {
	if r.alexa != nil {
		return r.alexa, nil
	}
	w, err := r.freshWorld()
	if err != nil {
		return nil, err
	}
	// The impact campaign always runs hourly regardless of the world's
	// stride: the named outage events last only a few hours, and
	// Figure 4's whole point is catching them. One weighted target per
	// responder keeps the hourly grid affordable.
	res := &alexaResults{impact: scanner.NewDomainImpact(time.Hour, 1)}
	st, storeOpts, err := r.openCampaignStore("alexa", w.Config.End, time.Hour)
	if err != nil {
		return nil, err
	}
	opts := append([]scanner.Option{
		scanner.WithTargets(w.AlexaTargets...),
		scanner.WithWindow(w.Config.Start, w.Config.End),
		scanner.WithStride(time.Hour),
	}, storeOpts...)
	camp, err := scanner.NewCampaign(&scanner.Client{Transport: w.Network}, w.Clock, opts...)
	if err != nil {
		return nil, closeStore(st, err)
	}
	if st != nil {
		st.SetCheckpointPayload(func() []byte { return []byte(camp.Stats().String()) })
	}
	n, err := camp.Run(ctx, res.impact)
	if err = closeStore(st, err); err != nil {
		return nil, err
	}
	res.scans = n
	report.CampaignStats(r.Out, "Alexa impact campaign", camp.Stats())
	r.alexa = res
	return res, nil
}

func (r *Runner) runFigure4(ctx context.Context) error {
	res, err := r.ensureAlexa(ctx)
	if err != nil {
		return err
	}
	var names []string
	for _, v := range netsim.PaperVantages() {
		names = append(names, v.Name)
	}
	sort.Strings(names)
	report.Figure4(r.Out, res.impact, names, 1000)
	return nil
}

func (r *Runner) runConsistency(name string) error {
	// Table 1 and Figure 10 come from one study and render together;
	// emit the block once per runner.
	if r.consistencyDone {
		return nil
	}
	w, err := r.freshWorld()
	if err != nil {
		return err
	}
	study := &consistency.Study{Network: w.Network, Vantage: netsim.PaperVantages()[1]}
	rep, err := study.Run(w.Config.Start.Add(6*24*time.Hour), w.ConsistencySources)
	if err != nil {
		return err
	}
	_ = name
	report.Table1(r.Out, rep)
	r.consistencyDone = true
	return nil
}

func (r *Runner) runTable2() error {
	h, err := browser.NewHarness(time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		return err
	}
	rows, err := h.RunTable2(browser.Table2Behaviors())
	if err != nil {
		return err
	}
	report.Table2(r.Out, rows)
	return nil
}

func (r *Runner) runTable3() error {
	results, err := webserver.Table3()
	if err != nil {
		return err
	}
	report.Table3(r.Out, results)
	return nil
}

// runVulnWindow runs the §3 window-of-vulnerability comparison, sampling
// response validities from the built world's fleet.
func (r *Runner) runVulnWindow() error {
	w, err := r.World()
	if err != nil {
		return err
	}
	results := vulnwindow.Simulate(vulnwindow.Config{
		Seed:                r.Config.Seed,
		ResponderValidities: w.ResponderValidities(),
	})
	report.VulnWindows(r.Out, results)
	return nil
}

func (r *Runner) runCDN(ctx context.Context) error {
	w, err := r.freshWorld()
	if err != nil {
		return err
	}
	client := &scanner.Client{Transport: w.Network}
	cdn := census.NewCDNCache(client, w.Clock, netsim.PaperVantages()[1])
	// Replay an afternoon of CDN TLS traffic over the Alexa targets,
	// popularity-weighted: the cache should end up touching only the
	// handful of responders behind the popular domains.
	targets := w.AlexaTargets
	if len(targets) > 20 {
		targets = targets[:20]
	}
	for round := 0; round < 200; round++ {
		for _, tgt := range targets {
			cdn.Lookup(ctx, tgt)
		}
		w.Clock.Advance(time.Minute)
	}
	report.CDNReport(r.Out, cdn.Stats())
	return nil
}
