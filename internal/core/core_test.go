package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/world"
)

// tinyConfig keeps the experiment runners fast: a small fleet and a short
// campaign window around the Comodo event.
func tinyConfig() world.Config {
	return world.Config{
		Seed:                   1,
		Responders:             130,
		CertsPerResponder:      1,
		Start:                  time.Date(2018, 4, 25, 0, 0, 0, 0, time.UTC),
		End:                    time.Date(2018, 4, 27, 0, 0, 0, 0, time.UTC),
		Stride:                 time.Hour,
		AlexaDomains:           5_000,
		ConsistentCAs:          2,
		SerialsPerConsistentCA: 10,
		Table1Scale:            100,
	}
}

func TestExperimentNames(t *testing.T) {
	names := Experiments()
	if len(names) != 21 {
		t.Fatalf("experiments = %d", len(names))
	}
	var sb strings.Builder
	r := NewRunner(tinyConfig(), &sb)
	if err := r.Run(context.Background(), "definitely-not-an-experiment"); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestRunQuickExperiments(t *testing.T) {
	var sb strings.Builder
	r := NewRunner(tinyConfig(), &sb)
	for _, exp := range []string{"sec4", "fig2", "fig11", "fig12", "table2", "table3", "cdn", "vulnwindow"} {
		if err := r.Run(context.Background(), exp); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	out := sb.String()
	for _, want := range []string{
		"Section 4", "Figure 2", "Figure 11", "Figure 12",
		"Table 2", "Table 3", "CDN perspective", "window of vulnerability",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunCampaignExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments take seconds")
	}
	var sb strings.Builder
	r := NewRunner(tinyConfig(), &sb)
	for _, exp := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "table1", "fig10", "hardfail", "latency"} {
		if err := r.Run(context.Background(), exp); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	out := sb.String()
	for _, want := range []string{
		"Figure 3", "Figure 4", "Figure 5", "Figure 6", "Table 1", "Figure 10",
		"hard-failed", "lookup latency",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
	// The quality block must render exactly once even though fig6 and
	// fig7 were both requested.
	if got := strings.Count(out, "== Figure 6:"); got != 1 {
		t.Errorf("quality block rendered %d times", got)
	}
	// Table 1 exact discrepancies survive into the rendered output.
	if !strings.Contains(out, "ocsp.camerfirma.test") {
		t.Error("camerfirma row missing from Table 1")
	}
}

func TestWorldIsCachedButCampaignsGetFreshWorlds(t *testing.T) {
	r := NewRunner(tinyConfig(), &strings.Builder{})
	a, err := r.World()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.World()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("World() should cache")
	}
	c, err := r.freshWorld()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("freshWorld() must not reuse the cached world")
	}
}
