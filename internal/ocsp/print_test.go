package ocsp

import (
	"crypto"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/pkixutil"
)

func TestFormatResponseGood(t *testing.T) {
	p := newTestPKI(t)
	id := p.certID(t)
	single := SingleResponse{
		CertID: id, Status: Good,
		ThisUpdate: testTime, NextUpdate: testTime.Add(7 * 24 * time.Hour),
		Reason: pkixutil.ReasonAbsent,
	}
	der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, []byte{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResponse(resp)
	for _, want := range []string{
		"OCSP Response Status: successful",
		"Responder ID: byKey",
		"Cert Status: good",
		"Next Update: 2018-05-08 12:00:00 UTC (validity 168h0m0s)",
		"Nonce: 0102",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatResponseRevokedAndBlank(t *testing.T) {
	p := newTestPKI(t)
	id := p.certID(t)
	single := SingleResponse{
		CertID: id, Status: Revoked,
		RevokedAt: testTime.Add(-time.Hour), Reason: pkixutil.ReasonKeyCompromise,
		ThisUpdate: testTime, // blank nextUpdate
	}
	der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResponse(resp)
	for _, want := range []string{
		"Cert Status: revoked",
		"Revocation Reason: keyCompromise",
		"blank — response never expires",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatErrorResponse(t *testing.T) {
	der, err := CreateErrorResponse(StatusTryLater)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResponse(resp)
	if !strings.Contains(out, "tryLater") {
		t.Errorf("missing status in %q", out)
	}
	if strings.Contains(out, "Responses") {
		t.Error("error responses carry no single responses")
	}
}

func TestFormatRequest(t *testing.T) {
	p := newTestPKI(t)
	req, err := NewRequest(p.leaf.Certificate, p.ca.Certificate, crypto.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	req.Nonce = []byte{0xaa}
	out := FormatRequest(req)
	for _, want := range []string{"1 certificate IDs", "SHA-1", "Nonce: aa"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
