package ocsp

import (
	"crypto"
	"crypto/x509"
	"encoding/asn1"
	"errors"
	"fmt"
	"math/big"

	"github.com/netmeasure/muststaple/internal/pkixutil"
)

// Request is a parsed or to-be-marshalled OCSP request. It may carry more
// than one CertID (RFC 6960 allows a requestList with multiple entries).
type Request struct {
	// CertIDs are the certificates whose status is requested; at least
	// one is required.
	CertIDs []CertID
	// Nonce, if non-empty, is carried in the id-pkix-ocsp-nonce request
	// extension to bind the response to this request.
	Nonce []byte
}

// Wire structures (RFC 6960 §4.1.1). Request signing (optionalSignature) is
// intentionally unsupported: no public responder requires it and the paper's
// measurement client never signs requests.
type ocspRequestASN1 struct {
	TBSRequest tbsRequestASN1
}

type tbsRequestASN1 struct {
	Version       int           `asn1:"explicit,tag:0,default:0,optional"`
	RequestorName asn1.RawValue `asn1:"explicit,tag:1,optional"`
	RequestList   []singleRequestASN1
	Extensions    []extensionASN1 `asn1:"explicit,tag:2,optional"`
}

type singleRequestASN1 struct {
	CertID     certIDASN1
	Extensions []extensionASN1 `asn1:"explicit,tag:0,optional"`
}

// NewRequest builds a single-certificate request for cert issued by issuer.
func NewRequest(cert, issuer *x509.Certificate, h crypto.Hash) (*Request, error) {
	id, err := NewCertID(cert, issuer, h)
	if err != nil {
		return nil, err
	}
	return &Request{CertIDs: []CertID{id}}, nil
}

// NewRequestForSerial builds a request for a bare (issuer, serial) pair.
func NewRequestForSerial(serial *big.Int, issuer *x509.Certificate, h crypto.Hash) (*Request, error) {
	id, err := NewCertIDForSerial(serial, issuer, h)
	if err != nil {
		return nil, err
	}
	return &Request{CertIDs: []CertID{id}}, nil
}

// Marshal encodes the request as DER.
func (r *Request) Marshal() ([]byte, error) {
	if len(r.CertIDs) == 0 {
		return nil, errors.New("ocsp: request has no CertIDs")
	}
	var tbs tbsRequestASN1
	for _, id := range r.CertIDs {
		w, err := id.toASN1()
		if err != nil {
			return nil, err
		}
		tbs.RequestList = append(tbs.RequestList, singleRequestASN1{CertID: w})
	}
	if len(r.Nonce) > 0 {
		nonceDER, err := asn1.Marshal(r.Nonce)
		if err != nil {
			return nil, fmt.Errorf("ocsp: marshal nonce: %w", err)
		}
		tbs.Extensions = []extensionASN1{{ID: pkixutil.OIDOCSPNonce, Value: nonceDER}}
	}
	der, err := asn1.Marshal(ocspRequestASN1{TBSRequest: tbs})
	if err != nil {
		return nil, fmt.Errorf("ocsp: marshal request: %w", err)
	}
	return der, nil
}

// ParseRequest decodes a DER OCSP request.
func ParseRequest(der []byte) (*Request, error) {
	var w ocspRequestASN1
	rest, err := asn1.Unmarshal(der, &w)
	if err != nil {
		return nil, fmt.Errorf("ocsp: parse request: %w", err)
	}
	if len(rest) != 0 {
		return nil, errors.New("ocsp: trailing data after request")
	}
	if len(w.TBSRequest.RequestList) == 0 {
		return nil, errors.New("ocsp: request has empty requestList")
	}
	req := &Request{}
	for _, sr := range w.TBSRequest.RequestList {
		id, err := certIDFromASN1(sr.CertID)
		if err != nil {
			return nil, err
		}
		req.CertIDs = append(req.CertIDs, id)
	}
	if nonceDER := findNonce(w.TBSRequest.Extensions); nonceDER != nil {
		var nonce []byte
		if _, err := asn1.Unmarshal(nonceDER, &nonce); err != nil {
			// Some clients put the raw nonce bytes in the extension
			// value without the OCTET STRING wrapper; tolerate that.
			nonce = nonceDER
		}
		req.Nonce = nonce
	}
	return req, nil
}
