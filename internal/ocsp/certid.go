package ocsp

import (
	"bytes"
	"crypto"
	"crypto/x509"
	"encoding/asn1"
	"fmt"
	"math/big"

	"github.com/netmeasure/muststaple/internal/pkixutil"
)

// CertID identifies a certificate in OCSP requests and responses: the
// issuer's name and key hashes plus the certificate's serial number
// (RFC 6960 §4.1.1).
type CertID struct {
	// HashAlgorithm is the hash used for both issuer hashes. RFC 6960
	// responders universally support SHA-1 here; SHA-256 is also
	// accepted by this package.
	HashAlgorithm  crypto.Hash
	IssuerNameHash []byte
	IssuerKeyHash  []byte
	Serial         *big.Int
}

// certIDASN1 is the wire form of CertID.
type certIDASN1 struct {
	HashAlgorithm  pkixutil.AlgorithmIdentifier
	IssuerNameHash []byte
	IssuerKeyHash  []byte
	Serial         *big.Int
}

// NewCertID computes the CertID for a certificate issued by issuer, using
// hash h (crypto.SHA1 is the interoperable default).
func NewCertID(cert, issuer *x509.Certificate, h crypto.Hash) (CertID, error) {
	if cert == nil || issuer == nil {
		return CertID{}, fmt.Errorf("ocsp: nil certificate")
	}
	return NewCertIDForSerial(cert.SerialNumber, issuer, h)
}

// NewCertIDForSerial computes a CertID for a bare serial number — the shape
// of lookup the paper's CRL-vs-OCSP consistency study performs, where only
// (issuer, serial) pairs are known from CRL entries.
func NewCertIDForSerial(serial *big.Int, issuer *x509.Certificate, h crypto.Hash) (CertID, error) {
	if serial == nil {
		return CertID{}, fmt.Errorf("ocsp: nil serial number")
	}
	nameHash, err := pkixutil.IssuerNameHash(issuer, h)
	if err != nil {
		return CertID{}, err
	}
	keyHash, err := pkixutil.IssuerKeyHash(issuer, h)
	if err != nil {
		return CertID{}, err
	}
	return CertID{
		HashAlgorithm:  h,
		IssuerNameHash: nameHash,
		IssuerKeyHash:  keyHash,
		Serial:         new(big.Int).Set(serial),
	}, nil
}

// Equal reports whether two CertIDs identify the same certificate.
func (c CertID) Equal(o CertID) bool {
	return c.HashAlgorithm == o.HashAlgorithm &&
		bytes.Equal(c.IssuerNameHash, o.IssuerNameHash) &&
		bytes.Equal(c.IssuerKeyHash, o.IssuerKeyHash) &&
		c.Serial != nil && o.Serial != nil &&
		c.Serial.Cmp(o.Serial) == 0
}

// SameIssuer reports whether two CertIDs share issuer hashes (ignoring the
// serial), used to detect serial-number-mismatch responses where the
// responder answered about a different certificate from the same issuer.
func (c CertID) SameIssuer(o CertID) bool {
	return c.HashAlgorithm == o.HashAlgorithm &&
		bytes.Equal(c.IssuerNameHash, o.IssuerNameHash) &&
		bytes.Equal(c.IssuerKeyHash, o.IssuerKeyHash)
}

func (c CertID) toASN1() (certIDASN1, error) {
	alg, err := pkixutil.HashAlgorithmIdentifier(c.HashAlgorithm)
	if err != nil {
		return certIDASN1{}, err
	}
	if c.Serial == nil {
		return certIDASN1{}, fmt.Errorf("ocsp: CertID has nil serial")
	}
	return certIDASN1{
		HashAlgorithm:  alg,
		IssuerNameHash: c.IssuerNameHash,
		IssuerKeyHash:  c.IssuerKeyHash,
		Serial:         c.Serial,
	}, nil
}

func certIDFromASN1(w certIDASN1) (CertID, error) {
	h, err := pkixutil.HashFromOID(w.HashAlgorithm.Algorithm)
	if err != nil {
		return CertID{}, fmt.Errorf("ocsp: CertID hash: %w", err)
	}
	return CertID{
		HashAlgorithm:  h,
		IssuerNameHash: w.IssuerNameHash,
		IssuerKeyHash:  w.IssuerKeyHash,
		Serial:         w.Serial,
	}, nil
}

// extensionASN1 mirrors pkix.Extension without importing crypto/x509/pkix
// into the wire structures.
type extensionASN1 struct {
	ID       asn1.ObjectIdentifier
	Critical bool `asn1:"optional"`
	Value    []byte
}

func findNonce(exts []extensionASN1) []byte {
	for _, e := range exts {
		if e.ID.Equal(pkixutil.OIDOCSPNonce) {
			return e.Value
		}
	}
	return nil
}
