package ocsp

import (
	"bytes"
	"crypto"
	"crypto/x509"
	"math/big"
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/pki"
	"github.com/netmeasure/muststaple/internal/pkixutil"
)

// testPKI builds a small CA + leaf fixture shared by the tests in this
// package.
type testPKI struct {
	ca   *pki.CA
	leaf *pki.Leaf
}

func newTestPKI(t testing.TB) *testPKI {
	t.Helper()
	ca, err := pki.NewRootCA(pki.Config{Name: "OCSP Test Root", OCSPURL: "http://ocsp.test.example"})
	if err != nil {
		t.Fatalf("NewRootCA: %v", err)
	}
	leaf, err := ca.IssueLeaf(pki.LeafOptions{DNSNames: []string{"www.example.test"}})
	if err != nil {
		t.Fatalf("IssueLeaf: %v", err)
	}
	return &testPKI{ca: ca, leaf: leaf}
}

func (p *testPKI) certID(t testing.TB) CertID {
	t.Helper()
	id, err := NewCertID(p.leaf.Certificate, p.ca.Certificate, crypto.SHA1)
	if err != nil {
		t.Fatalf("NewCertID: %v", err)
	}
	return id
}

func (p *testPKI) template() *ResponderTemplate {
	return &ResponderTemplate{Signer: p.ca.Key, Certificate: p.ca.Certificate}
}

var testTime = time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)

func TestRequestRoundTrip(t *testing.T) {
	p := newTestPKI(t)
	req, err := NewRequest(p.leaf.Certificate, p.ca.Certificate, crypto.SHA1)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Nonce = []byte{1, 2, 3, 4, 5, 6, 7, 8}
	der, err := req.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := ParseRequest(der)
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if len(got.CertIDs) != 1 {
		t.Fatalf("got %d CertIDs, want 1", len(got.CertIDs))
	}
	if !got.CertIDs[0].Equal(req.CertIDs[0]) {
		t.Errorf("CertID mismatch after round trip")
	}
	if !bytes.Equal(got.Nonce, req.Nonce) {
		t.Errorf("nonce mismatch: got %x want %x", got.Nonce, req.Nonce)
	}
}

func TestRequestMultiSerial(t *testing.T) {
	p := newTestPKI(t)
	req := &Request{}
	for i := 1; i <= 20; i++ {
		id, err := NewCertIDForSerial(big.NewInt(int64(1000+i)), p.ca.Certificate, crypto.SHA1)
		if err != nil {
			t.Fatalf("NewCertIDForSerial: %v", err)
		}
		req.CertIDs = append(req.CertIDs, id)
	}
	der, err := req.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := ParseRequest(der)
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if len(got.CertIDs) != 20 {
		t.Fatalf("got %d CertIDs, want 20", len(got.CertIDs))
	}
	for i, id := range got.CertIDs {
		if id.Serial.Int64() != int64(1001+i) {
			t.Errorf("CertID %d: serial %v, want %d", i, id.Serial, 1001+i)
		}
	}
}

func TestRequestErrors(t *testing.T) {
	if _, err := (&Request{}).Marshal(); err == nil {
		t.Error("Marshal of empty request should fail")
	}
	if _, err := ParseRequest([]byte{0x30, 0x00}); err == nil {
		t.Error("ParseRequest of empty sequence should fail")
	}
	if _, err := ParseRequest([]byte("not der")); err == nil {
		t.Error("ParseRequest of garbage should fail")
	}
	if _, err := ParseRequest(nil); err == nil {
		t.Error("ParseRequest of nil should fail")
	}
}

func TestResponseGoodRoundTrip(t *testing.T) {
	p := newTestPKI(t)
	id := p.certID(t)
	single := SingleResponse{
		CertID:     id,
		Status:     Good,
		ThisUpdate: testTime,
		NextUpdate: testTime.Add(7 * 24 * time.Hour),
		Reason:     pkixutil.ReasonAbsent,
	}
	der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatalf("CreateResponse: %v", err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	if resp.Status != StatusSuccessful {
		t.Fatalf("status = %v, want successful", resp.Status)
	}
	if !resp.ProducedAt.Equal(testTime) {
		t.Errorf("producedAt = %v, want %v", resp.ProducedAt, testTime)
	}
	got := resp.Find(id)
	if got == nil {
		t.Fatal("Find returned nil for requested CertID")
	}
	if got.Status != Good {
		t.Errorf("cert status = %v, want good", got.Status)
	}
	if !got.ThisUpdate.Equal(single.ThisUpdate) || !got.NextUpdate.Equal(single.NextUpdate) {
		t.Errorf("validity window mismatch: got [%v, %v]", got.ThisUpdate, got.NextUpdate)
	}
	if err := resp.CheckSignatureFrom(p.ca.Certificate); err != nil {
		t.Errorf("CheckSignatureFrom: %v", err)
	}
}

func TestResponseRevokedWithReason(t *testing.T) {
	p := newTestPKI(t)
	id := p.certID(t)
	revokedAt := testTime.Add(-48 * time.Hour)
	single := SingleResponse{
		CertID:     id,
		Status:     Revoked,
		RevokedAt:  revokedAt,
		Reason:     pkixutil.ReasonKeyCompromise,
		ThisUpdate: testTime,
		NextUpdate: testTime.Add(24 * time.Hour),
	}
	der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatalf("CreateResponse: %v", err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	got := resp.Find(id)
	if got == nil {
		t.Fatal("Find returned nil")
	}
	if got.Status != Revoked {
		t.Fatalf("status = %v, want revoked", got.Status)
	}
	if !got.RevokedAt.Equal(revokedAt) {
		t.Errorf("revokedAt = %v, want %v", got.RevokedAt, revokedAt)
	}
	if got.Reason != pkixutil.ReasonKeyCompromise {
		t.Errorf("reason = %v, want keyCompromise", got.Reason)
	}
}

func TestResponseRevokedWithoutReason(t *testing.T) {
	p := newTestPKI(t)
	id := p.certID(t)
	single := SingleResponse{
		CertID:     id,
		Status:     Revoked,
		RevokedAt:  testTime.Add(-time.Hour),
		Reason:     pkixutil.ReasonAbsent,
		ThisUpdate: testTime,
		NextUpdate: testTime.Add(24 * time.Hour),
	}
	der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatalf("CreateResponse: %v", err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	got := resp.Find(id)
	if got.Reason != pkixutil.ReasonAbsent {
		t.Errorf("reason = %v, want absent (no reason code on the wire)", got.Reason)
	}
}

func TestResponseUnknown(t *testing.T) {
	p := newTestPKI(t)
	id := p.certID(t)
	single := SingleResponse{
		CertID:     id,
		Status:     Unknown,
		ThisUpdate: testTime,
		NextUpdate: testTime.Add(24 * time.Hour),
		Reason:     pkixutil.ReasonAbsent,
	}
	der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatalf("CreateResponse: %v", err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	if got := resp.Find(id); got == nil || got.Status != Unknown {
		t.Errorf("status = %v, want unknown", got)
	}
}

func TestResponseBlankNextUpdate(t *testing.T) {
	p := newTestPKI(t)
	id := p.certID(t)
	single := SingleResponse{
		CertID:     id,
		Status:     Good,
		ThisUpdate: testTime,
		Reason:     pkixutil.ReasonAbsent,
		// NextUpdate deliberately zero: blank on the wire.
	}
	der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatalf("CreateResponse: %v", err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	got := resp.Find(id)
	if got.HasNextUpdate() {
		t.Fatalf("nextUpdate should be blank, got %v", got.NextUpdate)
	}
	// A blank nextUpdate is technically valid forever — the security
	// hazard §5.4 of the paper flags.
	if !got.ValidAt(testTime.AddDate(10, 0, 0)) {
		t.Error("blank nextUpdate response should validate 10 years out")
	}
	if got.ValidAt(testTime.Add(-time.Second)) {
		t.Error("response must not validate before thisUpdate")
	}
}

func TestResponseMultiSerial(t *testing.T) {
	p := newTestPKI(t)
	var singles []SingleResponse
	for i := 0; i < 20; i++ {
		id, err := NewCertIDForSerial(big.NewInt(int64(5000+i)), p.ca.Certificate, crypto.SHA1)
		if err != nil {
			t.Fatal(err)
		}
		singles = append(singles, SingleResponse{
			CertID: id, Status: Good, ThisUpdate: testTime,
			NextUpdate: testTime.Add(time.Hour), Reason: pkixutil.ReasonAbsent,
		})
	}
	der, err := CreateResponse(p.template(), testTime, singles, nil)
	if err != nil {
		t.Fatalf("CreateResponse: %v", err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	if len(resp.Responses) != 20 {
		t.Fatalf("got %d single responses, want 20", len(resp.Responses))
	}
	if err := resp.CheckSignatureFrom(p.ca.Certificate); err != nil {
		t.Errorf("CheckSignatureFrom: %v", err)
	}
}

func TestResponseNonceEcho(t *testing.T) {
	p := newTestPKI(t)
	id := p.certID(t)
	nonce := []byte("0123456789abcdef")
	single := SingleResponse{CertID: id, Status: Good, ThisUpdate: testTime, NextUpdate: testTime.Add(time.Hour), Reason: pkixutil.ReasonAbsent}
	der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nonce)
	if err != nil {
		t.Fatalf("CreateResponse: %v", err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	if !bytes.Equal(resp.Nonce, nonce) {
		t.Errorf("nonce = %x, want %x", resp.Nonce, nonce)
	}
}

func TestResponseSerialMismatchDetectable(t *testing.T) {
	p := newTestPKI(t)
	requested := p.certID(t)
	other, err := NewCertIDForSerial(big.NewInt(999999), p.ca.Certificate, crypto.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	single := SingleResponse{CertID: other, Status: Good, ThisUpdate: testTime, NextUpdate: testTime.Add(time.Hour), Reason: pkixutil.ReasonAbsent}
	der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Find(requested) != nil {
		t.Error("Find should miss: responder answered about a different serial")
	}
	if !resp.Responses[0].CertID.SameIssuer(requested) {
		t.Error("SameIssuer should hold — only the serial differs")
	}
}

func TestResponseTamperedSignature(t *testing.T) {
	p := newTestPKI(t)
	id := p.certID(t)
	single := SingleResponse{CertID: id, Status: Good, ThisUpdate: testTime, NextUpdate: testTime.Add(time.Hour), Reason: pkixutil.ReasonAbsent}
	der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the signature.
	resp.Signature[len(resp.Signature)/2] ^= 0x40
	if err := resp.CheckSignatureFrom(p.ca.Certificate); err == nil {
		t.Error("CheckSignatureFrom should reject a tampered signature")
	}
}

func TestResponseWrongIssuer(t *testing.T) {
	p := newTestPKI(t)
	otherCA, err := pki.NewRootCA(pki.Config{Name: "Some Other Root"})
	if err != nil {
		t.Fatal(err)
	}
	id := p.certID(t)
	single := SingleResponse{CertID: id, Status: Good, ThisUpdate: testTime, NextUpdate: testTime.Add(time.Hour), Reason: pkixutil.ReasonAbsent}
	der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.CheckSignatureFrom(otherCA.Certificate); err == nil {
		t.Error("signature must not verify under an unrelated CA")
	}
}

func TestResponseDelegatedSigning(t *testing.T) {
	p := newTestPKI(t)
	delegate, err := p.ca.IssueOCSPResponderCert("OCSP Delegate", time.Time{}, time.Time{})
	if err != nil {
		t.Fatalf("IssueOCSPResponderCert: %v", err)
	}
	id := p.certID(t)
	single := SingleResponse{CertID: id, Status: Good, ThisUpdate: testTime, NextUpdate: testTime.Add(time.Hour), Reason: pkixutil.ReasonAbsent}
	tmpl := &ResponderTemplate{
		Signer:              delegate.Key,
		Certificate:         delegate.Certificate,
		IncludeCertificates: []*x509.Certificate{delegate.Certificate},
	}
	der, err := CreateResponse(tmpl, testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatalf("CreateResponse: %v", err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	if len(resp.Certificates) != 1 {
		t.Fatalf("embedded certs = %d, want 1", len(resp.Certificates))
	}
	// Verifies via the delegated responder cert chained to the issuer.
	if err := resp.CheckSignatureFrom(p.ca.Certificate); err != nil {
		t.Errorf("delegated CheckSignatureFrom: %v", err)
	}
}

func TestResponseDelegationWithoutEKURejected(t *testing.T) {
	p := newTestPKI(t)
	// A plain leaf (no OCSPSigning EKU) must not be accepted as a
	// delegated responder even though the issuer signed it.
	imposter, err := p.ca.IssueLeaf(pki.LeafOptions{DNSNames: []string{"imposter.example.test"}})
	if err != nil {
		t.Fatal(err)
	}
	id := p.certID(t)
	single := SingleResponse{CertID: id, Status: Good, ThisUpdate: testTime, NextUpdate: testTime.Add(time.Hour), Reason: pkixutil.ReasonAbsent}
	tmpl := &ResponderTemplate{
		Signer:              imposter.Key,
		Certificate:         imposter.Certificate,
		IncludeCertificates: []*x509.Certificate{imposter.Certificate},
	}
	der, err := CreateResponse(tmpl, testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.CheckSignatureFrom(p.ca.Certificate); err == nil {
		t.Error("a delegate without the OCSPSigning EKU must be rejected")
	}
}

func TestResponseByNameResponderID(t *testing.T) {
	p := newTestPKI(t)
	id := p.certID(t)
	single := SingleResponse{CertID: id, Status: Good, ThisUpdate: testTime, NextUpdate: testTime.Add(time.Hour), Reason: pkixutil.ReasonAbsent}
	tmpl := p.template()
	tmpl.ByName = true
	der, err := CreateResponse(tmpl, testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.ResponderRawName) == 0 {
		t.Error("byName responder ID missing")
	}
	if len(resp.ResponderKeyHash) != 0 {
		t.Error("byKey hash should be empty for byName responses")
	}
	if err := resp.CheckSignatureFrom(p.ca.Certificate); err != nil {
		t.Errorf("CheckSignatureFrom: %v", err)
	}
}

func TestErrorResponses(t *testing.T) {
	for _, status := range []ResponseStatus{StatusMalformedRequest, StatusInternalError, StatusTryLater, StatusSigRequired, StatusUnauthorized} {
		der, err := CreateErrorResponse(status)
		if err != nil {
			t.Fatalf("CreateErrorResponse(%v): %v", status, err)
		}
		resp, err := ParseResponse(der)
		if err != nil {
			t.Fatalf("ParseResponse(%v): %v", status, err)
		}
		if resp.Status != status {
			t.Errorf("status = %v, want %v", resp.Status, status)
		}
		if len(resp.Responses) != 0 {
			t.Errorf("error response carries single responses")
		}
	}
	if _, err := CreateErrorResponse(StatusSuccessful); err == nil {
		t.Error("CreateErrorResponse(successful) should fail")
	}
}

func TestParseResponseMalformedBodies(t *testing.T) {
	// The malformed bodies the paper saw in the wild (§5.3): empty,
	// the literal "0", and JavaScript pages.
	cases := map[string][]byte{
		"empty":      {},
		"zero":       []byte("0"),
		"javascript": []byte("<script>alert('not ocsp')</script>"),
		"truncated":  {0x30, 0x82, 0xff, 0xff, 0x0a},
	}
	for name, body := range cases {
		if _, err := ParseResponse(body); err == nil {
			t.Errorf("%s: ParseResponse should fail", name)
		}
	}
}

func TestParseResponseUndefinedStatus(t *testing.T) {
	// Outer status 4 is not defined by RFC 6960.
	der := []byte{0x30, 0x03, 0x0a, 0x01, 0x04}
	if _, err := ParseResponse(der); err == nil {
		t.Error("undefined response status should be rejected")
	}
}

func TestGETPathRoundTrip(t *testing.T) {
	p := newTestPKI(t)
	req, err := NewRequest(p.leaf.Certificate, p.ca.Certificate, crypto.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	der, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := EncodeGETPath(der)
	got, err := DecodeGETPath(path)
	if err != nil {
		t.Fatalf("DecodeGETPath: %v", err)
	}
	if !bytes.Equal(got, der) {
		t.Error("GET path round trip mismatch")
	}
	// With a leading slash, as a handler would see it.
	got, err = DecodeGETPath("/" + path)
	if err != nil || !bytes.Equal(got, der) {
		t.Errorf("DecodeGETPath with leading slash: %v", err)
	}
}

func TestCertIDSHA256(t *testing.T) {
	p := newTestPKI(t)
	id, err := NewCertID(p.leaf.Certificate, p.ca.Certificate, crypto.SHA256)
	if err != nil {
		t.Fatalf("NewCertID(SHA256): %v", err)
	}
	if len(id.IssuerNameHash) != 32 || len(id.IssuerKeyHash) != 32 {
		t.Fatalf("SHA-256 hashes should be 32 bytes, got %d/%d", len(id.IssuerNameHash), len(id.IssuerKeyHash))
	}
	single := SingleResponse{CertID: id, Status: Good, ThisUpdate: testTime, NextUpdate: testTime.Add(time.Hour), Reason: pkixutil.ReasonAbsent}
	der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Find(id) == nil {
		t.Error("SHA-256 CertID should round trip and match")
	}
	// A SHA-1 CertID for the same cert must not match the SHA-256 one.
	sha1ID := p.certID(t)
	if resp.Find(sha1ID) != nil {
		t.Error("SHA-1 CertID must not match a SHA-256 response entry")
	}
}

func TestRSASignedResponse(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA key generation is slow")
	}
	ca, err := pki.NewRootCA(pki.Config{Name: "RSA Root", KeyAlgorithm: pki.RSA2048})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(pki.LeafOptions{DNSNames: []string{"rsa.example.test"}})
	if err != nil {
		t.Fatal(err)
	}
	id, err := NewCertID(leaf.Certificate, ca.Certificate, crypto.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	single := SingleResponse{CertID: id, Status: Good, ThisUpdate: testTime, NextUpdate: testTime.Add(time.Hour), Reason: pkixutil.ReasonAbsent}
	der, err := CreateResponse(&ResponderTemplate{Signer: ca.Key, Certificate: ca.Certificate}, testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(der)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.SignatureAlgorithm.Equal(pkixutil.OIDSignatureSHA256WithRSA) {
		t.Errorf("signature algorithm = %v, want sha256WithRSA", resp.SignatureAlgorithm)
	}
	if err := resp.CheckSignatureFrom(ca.Certificate); err != nil {
		t.Errorf("RSA CheckSignatureFrom: %v", err)
	}
}

func TestResponseStatusStrings(t *testing.T) {
	if StatusTryLater.String() != "tryLater" {
		t.Errorf("got %q", StatusTryLater.String())
	}
	if Good.String() != "good" || Revoked.String() != "revoked" || Unknown.String() != "unknown" {
		t.Error("CertStatus string mismatch")
	}
	if ResponseStatus(4).Valid() {
		t.Error("status 4 is undefined and must not be Valid")
	}
}
