package ocsp

import (
	"fmt"
	"strings"
	"time"

	"github.com/netmeasure/muststaple/internal/pkixutil"
)

// FormatResponse renders a parsed response as human-readable text, in the
// spirit of `openssl ocsp -resp_text` — the debugging view an operator
// points at a misbehaving responder.
func FormatResponse(r *Response) string {
	var b strings.Builder
	fmt.Fprintf(&b, "OCSP Response Status: %s (%d)\n", r.Status, int(r.Status))
	if r.Status != StatusSuccessful {
		return b.String()
	}
	switch {
	case len(r.ResponderKeyHash) > 0:
		fmt.Fprintf(&b, "Responder ID: byKey %x\n", r.ResponderKeyHash)
	case len(r.ResponderRawName) > 0:
		fmt.Fprintf(&b, "Responder ID: byName (%d DER bytes)\n", len(r.ResponderRawName))
	}
	fmt.Fprintf(&b, "Produced At: %s\n", formatTime(r.ProducedAt))
	if len(r.Nonce) > 0 {
		fmt.Fprintf(&b, "Nonce: %x\n", r.Nonce)
	}
	fmt.Fprintf(&b, "Signature Algorithm: %s\n", r.SignatureAlgorithm)
	fmt.Fprintf(&b, "Responses (%d):\n", len(r.Responses))
	for i, s := range r.Responses {
		fmt.Fprintf(&b, "  [%d] Serial Number: %s\n", i, s.CertID.Serial)
		fmt.Fprintf(&b, "      Hash Algorithm: %v\n", s.CertID.HashAlgorithm)
		fmt.Fprintf(&b, "      Issuer Name Hash: %x\n", s.CertID.IssuerNameHash)
		fmt.Fprintf(&b, "      Issuer Key Hash: %x\n", s.CertID.IssuerKeyHash)
		fmt.Fprintf(&b, "      Cert Status: %s\n", s.Status)
		if s.Status == Revoked {
			fmt.Fprintf(&b, "      Revocation Time: %s\n", formatTime(s.RevokedAt))
			if s.Reason != pkixutil.ReasonAbsent {
				fmt.Fprintf(&b, "      Revocation Reason: %s\n", s.Reason)
			}
		}
		fmt.Fprintf(&b, "      This Update: %s\n", formatTime(s.ThisUpdate))
		if s.HasNextUpdate() {
			fmt.Fprintf(&b, "      Next Update: %s (validity %s)\n",
				formatTime(s.NextUpdate), s.NextUpdate.Sub(s.ThisUpdate))
		} else {
			fmt.Fprintf(&b, "      Next Update: (blank — response never expires)\n")
		}
	}
	if len(r.Certificates) > 0 {
		fmt.Fprintf(&b, "Embedded Certificates (%d):\n", len(r.Certificates))
		for i, c := range r.Certificates {
			fmt.Fprintf(&b, "  [%d] %s (serial %s, expires %s)\n",
				i, c.Subject.CommonName, c.SerialNumber, formatTime(c.NotAfter))
		}
	}
	return b.String()
}

// FormatRequest renders a parsed request as text.
func FormatRequest(r *Request) string {
	var b strings.Builder
	fmt.Fprintf(&b, "OCSP Request (%d certificate IDs):\n", len(r.CertIDs))
	for i, id := range r.CertIDs {
		fmt.Fprintf(&b, "  [%d] Serial Number: %s\n", i, id.Serial)
		fmt.Fprintf(&b, "      Hash Algorithm: %v\n", id.HashAlgorithm)
		fmt.Fprintf(&b, "      Issuer Name Hash: %x\n", id.IssuerNameHash)
		fmt.Fprintf(&b, "      Issuer Key Hash: %x\n", id.IssuerKeyHash)
	}
	if len(r.Nonce) > 0 {
		fmt.Fprintf(&b, "Nonce: %x\n", r.Nonce)
	}
	return b.String()
}

func formatTime(t time.Time) string {
	return t.UTC().Format("2006-01-02 15:04:05 UTC")
}
