package ocsp

import (
	"context"
	"crypto"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/pkixutil"
)

// echoResponder is a minimal HTTP handler that parses requests from both
// transport encodings and answers Good, for exercising the client side.
func echoResponder(t testing.TB, p *testPKI) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var reqDER []byte
		switch r.Method {
		case http.MethodPost:
			if ct := r.Header.Get("Content-Type"); ct != ContentTypeRequest {
				http.Error(w, "bad content type "+ct, http.StatusUnsupportedMediaType)
				return
			}
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, "read", http.StatusBadRequest)
				return
			}
			reqDER = body
		case http.MethodGet:
			der, err := DecodeGETPath(r.URL.Path)
			if err != nil {
				http.Error(w, "decode", http.StatusBadRequest)
				return
			}
			reqDER = der
		}
		req, err := ParseRequest(reqDER)
		if err != nil {
			http.Error(w, "parse", http.StatusBadRequest)
			return
		}
		single := SingleResponse{
			CertID:     req.CertIDs[0],
			Status:     Good,
			ThisUpdate: testTime,
			NextUpdate: testTime.Add(time.Hour),
			Reason:     pkixutil.ReasonAbsent,
		}
		der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, req.Nonce)
		if err != nil {
			http.Error(w, "create", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentTypeResponse)
		w.Write(der)
	})
}

func TestFetchPOSTAndGET(t *testing.T) {
	p := newTestPKI(t)
	srv := httptest.NewServer(echoResponder(t, p))
	defer srv.Close()
	req, err := NewRequest(p.leaf.Certificate, p.ca.Certificate, crypto.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{http.MethodPost, http.MethodGet} {
		res, err := Fetch(context.Background(), srv.Client(), method, srv.URL, req)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if res.HTTPStatus != http.StatusOK {
			t.Fatalf("%s: status %d", method, res.HTTPStatus)
		}
		resp, err := ParseResponse(res.Body)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if resp.Find(req.CertIDs[0]) == nil {
			t.Errorf("%s: response misses the requested serial", method)
		}
	}
}

func TestGetConvenience(t *testing.T) {
	p := newTestPKI(t)
	srv := httptest.NewServer(echoResponder(t, p))
	defer srv.Close()
	req, err := NewRequest(p.leaf.Certificate, p.ca.Certificate, crypto.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	req.Nonce = []byte("nonce-for-http")
	resp, err := Get(context.Background(), srv.Client(), http.MethodPost, srv.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Nonce) != "nonce-for-http" {
		t.Errorf("nonce not echoed over HTTP: %q", resp.Nonce)
	}
	if err := resp.CheckSignatureFrom(p.ca.Certificate); err != nil {
		t.Errorf("signature over HTTP: %v", err)
	}
}

func TestGetRejectsHTTPErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	p := newTestPKI(t)
	req, _ := NewRequest(p.leaf.Certificate, p.ca.Certificate, crypto.SHA1)
	if _, err := Get(context.Background(), srv.Client(), http.MethodPost, srv.URL, req); err == nil {
		t.Error("Get must fail on HTTP 503")
	}
}

func TestGetRejectsEmptyBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	p := newTestPKI(t)
	req, _ := NewRequest(p.leaf.Certificate, p.ca.Certificate, crypto.SHA1)
	if _, err := Get(context.Background(), srv.Client(), http.MethodPost, srv.URL, req); err == nil {
		t.Error("Get must fail on an empty 200 body")
	}
}

func TestFetchBoundsResponseSize(t *testing.T) {
	// A misbehaving responder streaming garbage must not exhaust the
	// client.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		junk := make([]byte, 1<<16)
		for i := 0; i < 64; i++ { // 4 MiB total
			w.Write(junk)
		}
	}))
	defer srv.Close()
	p := newTestPKI(t)
	req, _ := NewRequest(p.leaf.Certificate, p.ca.Certificate, crypto.SHA1)
	res, err := Fetch(context.Background(), srv.Client(), http.MethodPost, srv.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Body) > 1<<20 {
		t.Errorf("body not bounded: %d bytes", len(res.Body))
	}
}

// decodeGETPathCorpus is the lenient-decoder acceptance corpus: every
// base64 dialect clients emit (standard and url-safe alphabets, with and
// without '=' padding, with '/', '+', '=' percent-escaped), DER chosen so
// the base64 hits '+', '/', and padding: 0xfb 0xef 0xbe → "++++",
// 0xff 0xef → "/+8=". It doubles as the FuzzDecodeGETPath seed corpus
// pinning DecodeGETPath and AppendDecodeGETPath to each other.
var decodeGETPathCorpus = []struct {
	name string
	path string
	want []byte // nil: the path must be rejected
}{
	{"canonical", EncodeGETPath([]byte{0xfb, 0xef, 0xbe}), []byte{0xfb, 0xef, 0xbe}},
	{"std-plain", "++++", []byte{0xfb, 0xef, 0xbe}},
	{"urlsafe", "----", []byte{0xfb, 0xef, 0xbe}},
	{"std-padded", "++8=", []byte{0xfb, 0xef}},
	{"stripped-padding", "++8", []byte{0xfb, 0xef}},
	// url-safe '_' normalizes to '/' mid-decode without being
	// mistaken for a path separator.
	{"urlsafe-stripped", "_-8", []byte{0xff, 0xef}},
	// A percent-escaped '/' survives because escapes are resolved
	// after path splitting, never before.
	{"escaped-slash-plus", "%2F%2B8%3D", []byte{0xff, 0xef}},
	{"leading-path-slash", "/++8=", []byte{0xfb, 0xef}},
	{"bad-alphabet", "@@@@", nil},
	{"bad-escape", "%zz", nil},
	{"bad-length", "a", nil},
	{"truncated-escape", "++8%3", nil},
	{"interior-padding", "+=+8", nil},
}

func TestDecodeGETPathVariants(t *testing.T) {
	for _, tc := range decodeGETPathCorpus {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeGETPath(tc.path)
			if tc.want == nil {
				if err == nil {
					t.Fatalf("DecodeGETPath(%q) succeeded, want error", tc.path)
				}
				return
			}
			if err != nil {
				t.Fatalf("DecodeGETPath(%q): %v", tc.path, err)
			}
			if string(got) != string(tc.want) {
				t.Errorf("DecodeGETPath(%q) = %x, want %x", tc.path, got, tc.want)
			}
		})
	}
}

// TestAppendDecodeGETPathMatchesDecode pins the zero-allocation decoder
// to the reference one over the whole corpus, including append-to-prefix
// and reused-capacity calling patterns.
func TestAppendDecodeGETPathMatchesDecode(t *testing.T) {
	scratch := make([]byte, 0, 64)
	for _, tc := range decodeGETPathCorpus {
		want, wantErr := DecodeGETPath(tc.path)
		got, gotErr := AppendDecodeGETPath(nil, tc.path)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: DecodeGETPath=%v AppendDecodeGETPath=%v", tc.name, wantErr, gotErr)
		}
		if wantErr == nil && string(got) != string(want) {
			t.Fatalf("%s: AppendDecodeGETPath = %x, want %x", tc.name, got, want)
		}

		prefix := []byte("pfx")
		appended, err := AppendDecodeGETPath(prefix, tc.path)
		if (wantErr == nil) != (err == nil) {
			t.Fatalf("%s: append-form error mismatch: %v vs %v", tc.name, wantErr, err)
		}
		if err == nil && string(appended) != "pfx"+string(want) {
			t.Fatalf("%s: append form = %q, want %q", tc.name, appended, "pfx"+string(want))
		}

		reused, err := AppendDecodeGETPath(scratch[:0], tc.path)
		if (wantErr == nil) != (err == nil) {
			t.Fatalf("%s: reused-scratch error mismatch: %v vs %v", tc.name, wantErr, err)
		}
		if err == nil {
			if string(reused) != string(want) {
				t.Fatalf("%s: reused scratch = %x, want %x", tc.name, reused, want)
			}
			if cap(reused) > cap(scratch) {
				scratch = reused[:0]
			}
		}
	}
}

func TestNewHTTPRequestValidation(t *testing.T) {
	if _, err := NewHTTPRequest(context.Background(), http.MethodPut, "http://x.test", []byte{1}); err == nil {
		t.Error("unsupported method must fail")
	}
	req, err := NewHTTPRequest(context.Background(), http.MethodGet, "http://x.test/ocsp/", []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// The GET URL embeds the base64 request after the base path.
	if got := req.URL.Path; got == "/ocsp/" || len(got) <= len("/ocsp/") {
		t.Errorf("GET path missing encoded request: %q", got)
	}
}
