package ocsp

import (
	"crypto"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/netmeasure/muststaple/internal/pkixutil"
)

// TestParseResponseNeverPanics mutates valid response bytes at random and
// asserts the parser returns errors instead of panicking — the measurement
// client must survive anything a broken responder sends (§5.3 saw empty
// bodies, "0", JavaScript, and arbitrarily truncated DER in the wild).
func TestParseResponseNeverPanics(t *testing.T) {
	p := newTestPKI(t)
	id := p.certID(t)
	single := SingleResponse{
		CertID: id, Status: Good,
		ThisUpdate: testTime, NextUpdate: testTime.Add(time.Hour),
		Reason: pkixutil.ReasonAbsent,
	}
	valid, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nil)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5000; trial++ {
		mutated := make([]byte, len(valid))
		copy(mutated, valid)
		switch trial % 4 {
		case 0: // flip random bytes
			for k := 0; k < 1+rng.Intn(4); k++ {
				mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
			}
		case 1: // truncate
			mutated = mutated[:rng.Intn(len(mutated))]
		case 2: // extend with garbage
			extra := make([]byte, 1+rng.Intn(32))
			rng.Read(extra)
			mutated = append(mutated, extra...)
		case 3: // random splice
			if len(mutated) > 8 {
				at := rng.Intn(len(mutated) - 4)
				rng.Read(mutated[at : at+4])
			}
		}
		// Must not panic; errors (or even lucky successes for benign
		// mutations) are both fine.
		resp, err := ParseResponse(mutated)
		if err == nil && resp == nil {
			t.Fatal("nil response with nil error")
		}
	}
}

// TestParseRequestNeverPanics does the same for the request parser, which
// responders expose to arbitrary clients.
func TestParseRequestNeverPanics(t *testing.T) {
	p := newTestPKI(t)
	req, err := NewRequest(p.leaf.Certificate, p.ca.Certificate, crypto.SHA1)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 5000; trial++ {
		mutated := make([]byte, len(valid))
		copy(mutated, valid)
		for k := 0; k < 1+rng.Intn(6); k++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		if trial%3 == 0 {
			mutated = mutated[:rng.Intn(len(mutated))]
		}
		if r, err := ParseRequest(mutated); err == nil && r == nil {
			t.Fatal("nil request with nil error")
		}
	}
}

// TestParseRandomBytes feeds pure noise to both parsers.
func TestParseRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		respOut, respErr := ParseResponse(data)
		reqOut, reqErr := ParseRequest(data)
		// No panics (reaching here proves it) and no nil-with-nil.
		return (respErr != nil || respOut != nil) && (reqErr != nil || reqOut != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestResponseRoundTripProperty: any combination of status, times, reason,
// and serial survives a marshal/parse cycle intact.
func TestResponseRoundTripProperty(t *testing.T) {
	p := newTestPKI(t)
	base := p.certID(t)
	rng := rand.New(rand.NewSource(44))
	statuses := []CertStatus{Good, Revoked, Unknown}
	reasons := []pkixutil.ReasonCode{
		pkixutil.ReasonAbsent, pkixutil.ReasonUnspecified,
		pkixutil.ReasonKeyCompromise, pkixutil.ReasonCertificateHold,
	}
	for trial := 0; trial < 60; trial++ {
		id := base
		id.Serial = new(big.Int).Add(base.Serial, big.NewInt(int64(trial)))
		single := SingleResponse{
			CertID:     id,
			Status:     statuses[rng.Intn(len(statuses))],
			ThisUpdate: testTime.Add(time.Duration(rng.Intn(100)) * time.Minute),
			Reason:     pkixutil.ReasonAbsent,
		}
		if rng.Intn(2) == 0 {
			single.NextUpdate = single.ThisUpdate.Add(time.Duration(1+rng.Intn(10000)) * time.Minute)
		}
		if single.Status == Revoked {
			single.RevokedAt = testTime.Add(-time.Duration(rng.Intn(10000)) * time.Minute)
			single.Reason = reasons[rng.Intn(len(reasons))]
		}
		der, err := CreateResponse(p.template(), testTime, []SingleResponse{single}, nil)
		if err != nil {
			t.Fatalf("trial %d: create: %v", trial, err)
		}
		resp, err := ParseResponse(der)
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		got := resp.Find(single.CertID)
		if got == nil {
			t.Fatalf("trial %d: lost the CertID", trial)
		}
		if got.Status != single.Status {
			t.Fatalf("trial %d: status %v != %v", trial, got.Status, single.Status)
		}
		if !got.ThisUpdate.Equal(single.ThisUpdate.Truncate(time.Second)) {
			t.Fatalf("trial %d: thisUpdate drift", trial)
		}
		if got.HasNextUpdate() != !single.NextUpdate.IsZero() {
			t.Fatalf("trial %d: nextUpdate presence drift", trial)
		}
		if single.Status == Revoked {
			if !got.RevokedAt.Equal(single.RevokedAt.Truncate(time.Second)) || got.Reason != single.Reason {
				t.Fatalf("trial %d: revocation drift: %v/%v", trial, got.RevokedAt, got.Reason)
			}
		}
		if err := resp.CheckSignatureFrom(p.ca.Certificate); err != nil {
			t.Fatalf("trial %d: signature: %v", trial, err)
		}
	}
}

// FuzzDecodeGETPath pins the lenient reference decoder (DecodeGETPath)
// and the zero-allocation serving-tier decoder (AppendDecodeGETPath) to
// each other: for every input, both must agree on accept-vs-reject, and
// on acceptance both must produce identical bytes. The seed corpus is
// the acceptance-test corpus plus escape/padding/alphabet edge cases.
func FuzzDecodeGETPath(f *testing.F) {
	for _, tc := range decodeGETPathCorpus {
		f.Add(tc.path)
	}
	f.Add("")
	f.Add("/")
	f.Add("%")
	f.Add("%2")
	f.Add("%2F%2f")
	f.Add("AAAA====")
	f.Add("_-_-_-_-")
	f.Add("+/=%0A")
	f.Fuzz(func(t *testing.T, path string) {
		want, wantErr := DecodeGETPath(path)
		got, gotErr := AppendDecodeGETPath(nil, path)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch for %q: DecodeGETPath=%v AppendDecodeGETPath=%v", path, wantErr, gotErr)
		}
		if wantErr == nil && string(want) != string(got) {
			t.Fatalf("byte mismatch for %q: %x vs %x", path, want, got)
		}
	})
}
