package ocsp

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"github.com/netmeasure/muststaple/internal/pkixutil"
)

// ContentTypeRequest and ContentTypeResponse are the media types registered
// for OCSP over HTTP (RFC 6960 Appendix A).
const (
	ContentTypeRequest  = "application/ocsp-request"
	ContentTypeResponse = "application/ocsp-response"
)

// maxResponseBytes bounds how much of an OCSP HTTP response body a client
// will read; real responses are a few KB, and the measurement client must
// not be blown up by a misbehaving responder streaming garbage.
const maxResponseBytes = 1 << 20

// EncodeGETPath returns the path suffix for an OCSP GET request: the
// base64-then-URL-escaped DER request appended to the responder URL
// (RFC 6960 Appendix A.1).
func EncodeGETPath(reqDER []byte) string {
	return url.PathEscape(base64.StdEncoding.EncodeToString(reqDER))
}

// DecodeGETPath inverts EncodeGETPath given the path portion after the
// responder prefix. Clients in the wild deviate from RFC 6960 Appendix
// A.1 in three tolerable ways — the base64url alphabet instead of the
// standard one, stripped '=' padding, and percent-escaping of '/', '+',
// and '=' — so the decoder accepts all of them: an RFC 5019 serving tier
// that rejected these would turn working clients into 4xx noise. Pass
// the still-escaped path (http.Request.URL.EscapedPath) when available,
// so a percent-escaped '/' is not confused with a path separator.
func DecodeGETPath(path string) ([]byte, error) {
	unescaped, err := url.PathUnescape(strings.TrimPrefix(path, "/"))
	if err != nil {
		return nil, fmt.Errorf("ocsp: unescape GET path: %w", err)
	}
	normalized := strings.NewReplacer("-", "+", "_", "/").Replace(unescaped)
	normalized = strings.TrimRight(normalized, "=")
	der, err := base64.RawStdEncoding.DecodeString(normalized)
	if err != nil {
		return nil, fmt.Errorf("ocsp: decode GET path: %w", err)
	}
	return der, nil
}

// AppendDecodeGETPath is the allocation-free form of DecodeGETPath: it
// appends the decoded request DER to dst and returns the extended slice.
// It accepts exactly the inputs DecodeGETPath accepts and produces the
// same bytes (FuzzDecodeGETPath pins the equivalence); the difference is
// mechanical — percent-decoding, alphabet normalization, and padding
// stripping happen in one pass over a pooled scratch buffer instead of
// three intermediate strings, so a serving-tier GET miss costs no decode
// garbage.
func AppendDecodeGETPath(dst []byte, path string) ([]byte, error) {
	if len(path) > 0 && path[0] == '/' {
		path = path[1:]
	}
	scratch := pkixutil.GetBytes()
	defer pkixutil.PutBytes(scratch)
	norm := *scratch
	for i := 0; i < len(path); {
		c := path[i]
		if c == '%' {
			if i+2 >= len(path) {
				return nil, fmt.Errorf("ocsp: unescape GET path: invalid URL escape %q", path[i:])
			}
			hi, ok1 := unhex(path[i+1])
			lo, ok2 := unhex(path[i+2])
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("ocsp: unescape GET path: invalid URL escape %q", path[i:i+3])
			}
			c = hi<<4 | lo
			i += 3
		} else {
			i++
		}
		// Normalize the base64url alphabet to the standard one; a '='
		// that survives the trailing trim below is rejected by the raw
		// decoder, matching DecodeGETPath.
		switch c {
		case '-':
			c = '+'
		case '_':
			c = '/'
		}
		norm = append(norm, c)
	}
	for len(norm) > 0 && norm[len(norm)-1] == '=' {
		norm = norm[:len(norm)-1]
	}
	*scratch = norm // keep the grown backing array pooled

	need := base64.RawStdEncoding.DecodedLen(len(norm))
	if free := cap(dst) - len(dst); free < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	n, err := base64.RawStdEncoding.Decode(dst[len(dst):len(dst)+need], norm)
	if err != nil {
		return nil, fmt.Errorf("ocsp: decode GET path: %w", err)
	}
	return dst[:len(dst)+n], nil
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// NewHTTPRequest builds the HTTP request carrying an OCSP request to
// responderURL. method is http.MethodPost (the default used by the paper's
// measurement client) or http.MethodGet.
func NewHTTPRequest(ctx context.Context, method, responderURL string, reqDER []byte) (*http.Request, error) {
	switch method {
	case http.MethodPost:
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, responderURL, bytes.NewReader(reqDER))
		if err != nil {
			return nil, err
		}
		httpReq.Header.Set("Content-Type", ContentTypeRequest)
		return httpReq, nil
	case http.MethodGet:
		u := strings.TrimSuffix(responderURL, "/") + "/" + EncodeGETPath(reqDER)
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	default:
		return nil, fmt.Errorf("ocsp: unsupported HTTP method %q", method)
	}
}

// FetchResult is the raw outcome of one OCSP HTTP exchange, before any OCSP
// parsing. The scanner classifies failures from this.
type FetchResult struct {
	HTTPStatus int
	Body       []byte
}

// Fetch performs one OCSP exchange over client. It returns an error only
// for transport-level failures (DNS, TCP, TLS, timeouts); HTTP-level
// failures are reported through FetchResult.HTTPStatus so the caller can
// distinguish the paper's failure classes.
func Fetch(ctx context.Context, client *http.Client, method, responderURL string, req *Request) (*FetchResult, error) {
	reqDER, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	httpReq, err := NewHTTPRequest(ctx, method, responderURL, reqDER)
	if err != nil {
		return nil, err
	}
	httpResp, err := client.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, maxResponseBytes))
	if err != nil {
		return nil, fmt.Errorf("ocsp: read response body: %w", err)
	}
	return &FetchResult{HTTPStatus: httpResp.StatusCode, Body: body}, nil
}

// Get is a convenience wrapper: Fetch + ParseResponse, failing on non-200
// status. Use Fetch directly when failure classification matters.
func Get(ctx context.Context, client *http.Client, method, responderURL string, req *Request) (*Response, error) {
	res, err := Fetch(ctx, client, method, responderURL, req)
	if err != nil {
		return nil, err
	}
	if res.HTTPStatus != http.StatusOK {
		return nil, fmt.Errorf("ocsp: HTTP status %d", res.HTTPStatus)
	}
	if len(res.Body) == 0 {
		return nil, errors.New("ocsp: empty response body")
	}
	return ParseResponse(res.Body)
}
