package ocsp

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// ContentTypeRequest and ContentTypeResponse are the media types registered
// for OCSP over HTTP (RFC 6960 Appendix A).
const (
	ContentTypeRequest  = "application/ocsp-request"
	ContentTypeResponse = "application/ocsp-response"
)

// maxResponseBytes bounds how much of an OCSP HTTP response body a client
// will read; real responses are a few KB, and the measurement client must
// not be blown up by a misbehaving responder streaming garbage.
const maxResponseBytes = 1 << 20

// EncodeGETPath returns the path suffix for an OCSP GET request: the
// base64-then-URL-escaped DER request appended to the responder URL
// (RFC 6960 Appendix A.1).
func EncodeGETPath(reqDER []byte) string {
	return url.PathEscape(base64.StdEncoding.EncodeToString(reqDER))
}

// DecodeGETPath inverts EncodeGETPath given the path portion after the
// responder prefix. Clients in the wild deviate from RFC 6960 Appendix
// A.1 in three tolerable ways — the base64url alphabet instead of the
// standard one, stripped '=' padding, and percent-escaping of '/', '+',
// and '=' — so the decoder accepts all of them: an RFC 5019 serving tier
// that rejected these would turn working clients into 4xx noise. Pass
// the still-escaped path (http.Request.URL.EscapedPath) when available,
// so a percent-escaped '/' is not confused with a path separator.
func DecodeGETPath(path string) ([]byte, error) {
	unescaped, err := url.PathUnescape(strings.TrimPrefix(path, "/"))
	if err != nil {
		return nil, fmt.Errorf("ocsp: unescape GET path: %w", err)
	}
	normalized := strings.NewReplacer("-", "+", "_", "/").Replace(unescaped)
	normalized = strings.TrimRight(normalized, "=")
	der, err := base64.RawStdEncoding.DecodeString(normalized)
	if err != nil {
		return nil, fmt.Errorf("ocsp: decode GET path: %w", err)
	}
	return der, nil
}

// NewHTTPRequest builds the HTTP request carrying an OCSP request to
// responderURL. method is http.MethodPost (the default used by the paper's
// measurement client) or http.MethodGet.
func NewHTTPRequest(ctx context.Context, method, responderURL string, reqDER []byte) (*http.Request, error) {
	switch method {
	case http.MethodPost:
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, responderURL, bytes.NewReader(reqDER))
		if err != nil {
			return nil, err
		}
		httpReq.Header.Set("Content-Type", ContentTypeRequest)
		return httpReq, nil
	case http.MethodGet:
		u := strings.TrimSuffix(responderURL, "/") + "/" + EncodeGETPath(reqDER)
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	default:
		return nil, fmt.Errorf("ocsp: unsupported HTTP method %q", method)
	}
}

// FetchResult is the raw outcome of one OCSP HTTP exchange, before any OCSP
// parsing. The scanner classifies failures from this.
type FetchResult struct {
	HTTPStatus int
	Body       []byte
}

// Fetch performs one OCSP exchange over client. It returns an error only
// for transport-level failures (DNS, TCP, TLS, timeouts); HTTP-level
// failures are reported through FetchResult.HTTPStatus so the caller can
// distinguish the paper's failure classes.
func Fetch(ctx context.Context, client *http.Client, method, responderURL string, req *Request) (*FetchResult, error) {
	reqDER, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	httpReq, err := NewHTTPRequest(ctx, method, responderURL, reqDER)
	if err != nil {
		return nil, err
	}
	httpResp, err := client.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, maxResponseBytes))
	if err != nil {
		return nil, fmt.Errorf("ocsp: read response body: %w", err)
	}
	return &FetchResult{HTTPStatus: httpResp.StatusCode, Body: body}, nil
}

// Get is a convenience wrapper: Fetch + ParseResponse, failing on non-200
// status. Use Fetch directly when failure classification matters.
func Get(ctx context.Context, client *http.Client, method, responderURL string, req *Request) (*Response, error) {
	res, err := Fetch(ctx, client, method, responderURL, req)
	if err != nil {
		return nil, err
	}
	if res.HTTPStatus != http.StatusOK {
		return nil, fmt.Errorf("ocsp: HTTP status %d", res.HTTPStatus)
	}
	if len(res.Body) == 0 {
		return nil, errors.New("ocsp: empty response body")
	}
	return ParseResponse(res.Body)
}
