// Package ocsp is a from-scratch implementation of the Online Certificate
// Status Protocol (RFC 6960) on top of encoding/asn1. It provides request
// and response encoding/decoding, response signing and verification
// (including OCSP signature authority delegation), the nonce extension,
// multi-certificate requests and responses, and the HTTP GET/POST transport
// encodings.
//
// Unlike golang.org/x/crypto/ocsp (which this module deliberately does not
// use), this package supports multiple single requests per OCSP request and
// multiple SingleResponses per response — both of which the paper observes
// in the wild (Figure 7: 3.3% of responders always return 20 serial numbers
// per response) — as well as the pathological encodings the measurement
// study needs to detect: blank nextUpdate, premature thisUpdate, serial
// mismatches, and superfluous certificates.
package ocsp

import (
	"fmt"
)

// ResponseStatus is the OCSPResponseStatus enumeration (RFC 6960 §4.2.1).
type ResponseStatus int

const (
	// StatusSuccessful indicates the response has valid confirmations.
	StatusSuccessful ResponseStatus = 0
	// StatusMalformedRequest indicates an illegal confirmation request.
	StatusMalformedRequest ResponseStatus = 1
	// StatusInternalError indicates an internal error in the issuer.
	StatusInternalError ResponseStatus = 2
	// StatusTryLater asks the client to try again later.
	StatusTryLater ResponseStatus = 3
	// 4 is not used.
	// StatusSigRequired means the request must be signed.
	StatusSigRequired ResponseStatus = 5
	// StatusUnauthorized means the request was unauthorized.
	StatusUnauthorized ResponseStatus = 6
)

var responseStatusNames = map[ResponseStatus]string{
	StatusSuccessful:       "successful",
	StatusMalformedRequest: "malformedRequest",
	StatusInternalError:    "internalError",
	StatusTryLater:         "tryLater",
	StatusSigRequired:      "sigRequired",
	StatusUnauthorized:     "unauthorized",
}

func (s ResponseStatus) String() string {
	if n, ok := responseStatusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("responseStatus(%d)", int(s))
}

// Valid reports whether s is a status defined by RFC 6960.
func (s ResponseStatus) Valid() bool {
	_, ok := responseStatusNames[s]
	return ok
}

// CertStatus is a certificate's revocation status inside a SingleResponse.
type CertStatus int

const (
	// Good indicates the certificate is not known to be revoked. Note
	// (RFC 6960 §2.2, paper §2.2): Good does not assert the certificate
	// is within its validity interval; clients must check that
	// separately.
	Good CertStatus = iota
	// Revoked indicates the certificate has been revoked, temporarily
	// (certificateHold) or permanently.
	Revoked
	// Unknown indicates the responder does not know about the requested
	// certificate, typically because it is not served by this responder.
	// Clients are free to try another revocation source.
	Unknown
)

func (s CertStatus) String() string {
	switch s {
	case Good:
		return "good"
	case Revoked:
		return "revoked"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("certStatus(%d)", int(s))
}
