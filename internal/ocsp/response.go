package ocsp

import (
	"crypto"
	"crypto/x509"
	"encoding/asn1"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/netmeasure/muststaple/internal/pkixutil"
)

// SingleResponse is the status assertion for one certificate inside an OCSP
// response (RFC 6960 §4.2.1).
type SingleResponse struct {
	CertID CertID
	Status CertStatus

	// RevokedAt and Reason are set when Status == Revoked. Reason is
	// pkixutil.ReasonAbsent when the responder included no reason code —
	// the overwhelmingly common case in the wild.
	RevokedAt time.Time
	Reason    pkixutil.ReasonCode

	// ThisUpdate is the time at which the status being indicated is
	// known to be correct; NextUpdate is when newer information will be
	// available. A zero NextUpdate means the responder left it blank
	// ("newer revocation information is always available"), which makes
	// the response technically valid forever — one of the quality
	// problems §5.4 of the paper studies (9.1% of responders).
	ThisUpdate time.Time
	NextUpdate time.Time
}

// HasNextUpdate reports whether the responder set a nextUpdate at all.
func (s *SingleResponse) HasNextUpdate() bool { return !s.NextUpdate.IsZero() }

// ValidAt reports whether the assertion is within its validity window at t.
// A blank nextUpdate never expires.
func (s *SingleResponse) ValidAt(t time.Time) bool {
	if t.Before(s.ThisUpdate) {
		return false
	}
	return s.NextUpdate.IsZero() || !t.After(s.NextUpdate)
}

// Response is a parsed OCSP response.
type Response struct {
	// Status is the outer OCSPResponseStatus. The remaining fields are
	// only meaningful when Status == StatusSuccessful.
	Status ResponseStatus

	// ProducedAt is when the responder generated (signed) this response.
	ProducedAt time.Time

	// Responses holds one SingleResponse per asserted certificate.
	// Responders may include unsolicited extras (Figure 7 of the paper).
	Responses []SingleResponse

	// Nonce echoes the request nonce, if the responder supports it.
	Nonce []byte

	// ResponderKeyHash or ResponderRawName identify the responder
	// (the byKey and byName arms of the ResponderID CHOICE).
	ResponderKeyHash []byte
	ResponderRawName []byte

	// Certificates are the certificates the responder chose to embed to
	// help signature validation. More than one is superfluous (Figure 6:
	// 14.5% of responders send extras; one sends a full chain of four
	// including the root).
	Certificates []*x509.Certificate

	// Signature material.
	SignatureAlgorithm asn1.ObjectIdentifier
	Signature          []byte

	// Raw is the full DER response; RawTBS is the DER of the signed
	// ResponseData.
	Raw    []byte
	RawTBS []byte
}

// Wire structures.
type ocspResponseASN1 struct {
	Status        asn1.Enumerated
	ResponseBytes responseBytesASN1 `asn1:"explicit,tag:0,optional"`
}

type responseBytesASN1 struct {
	ResponseType asn1.ObjectIdentifier
	Response     []byte
}

type basicResponseASN1 struct {
	TBSResponseData    asn1.RawValue
	SignatureAlgorithm pkixutil.AlgorithmIdentifier
	Signature          asn1.BitString
	Certificates       []asn1.RawValue `asn1:"explicit,tag:0,optional"`
}

type responseDataASN1 struct {
	Version     int           `asn1:"explicit,tag:0,default:0,optional"`
	ResponderID asn1.RawValue // CHOICE { byName [1] Name, byKey [2] OCTET STRING }
	ProducedAt  time.Time     `asn1:"generalized"`
	Responses   []singleResponseASN1
	Extensions  []extensionASN1 `asn1:"explicit,tag:1,optional"`
}

type singleResponseASN1 struct {
	CertID     certIDASN1
	CertStatus asn1.RawValue   // CHOICE, context tags 0/1/2
	ThisUpdate time.Time       `asn1:"generalized"`
	NextUpdate time.Time       `asn1:"generalized,explicit,tag:0,optional"`
	Extensions []extensionASN1 `asn1:"explicit,tag:1,optional"`
}

type revokedInfoASN1 struct {
	RevocationTime time.Time       `asn1:"generalized"`
	Reason         asn1.Enumerated `asn1:"explicit,tag:0,optional,default:-1"`
}

// ResponderTemplate describes the responder identity and signing setup used
// by CreateResponse.
type ResponderTemplate struct {
	// Signer signs the ResponseData. Required.
	Signer crypto.Signer

	// Certificate is the certificate whose key Signer holds. Its key
	// hash becomes the byKey ResponderID unless ByName is set. Required.
	Certificate *x509.Certificate

	// IncludeCertificates are embedded in the certs field of the
	// BasicOCSPResponse. Responders using signature-authority delegation
	// include their delegated responder certificate here; misbehaving
	// responders include whole chains (the "superfluous certificates"
	// behavior of §5.4).
	IncludeCertificates []*x509.Certificate

	// ByName selects the byName ResponderID arm instead of byKey.
	ByName bool

	// Rand is the randomness source for signing; nil means crypto/rand
	// via the signer's default.
	Rand io.Reader

	// The marshalled ResponderID CHOICE is invariant for a template, so
	// it is computed once and reused across every response the template
	// signs.
	ridOnce sync.Once
	rid     asn1.RawValue
	ridErr  error
}

// responderID returns the memoized ResponderID: the byKey arm hashes the
// responder certificate's public key (or byName wraps its subject), which
// never changes over a template's lifetime.
func (t *ResponderTemplate) responderID() (asn1.RawValue, error) {
	t.ridOnce.Do(func() {
		if t.ByName {
			t.rid, t.ridErr = marshalExplicit(1, t.Certificate.RawSubject)
			return
		}
		keyHash, err := pkixutil.IssuerKeyHash(t.Certificate, crypto.SHA1)
		if err != nil {
			t.ridErr = err
			return
		}
		keyDER, err := asn1.Marshal(keyHash)
		if err != nil {
			t.ridErr = err
			return
		}
		t.rid, t.ridErr = marshalExplicit(2, keyDER)
	})
	return t.rid, t.ridErr
}

// singlesPool recycles the wire-format single-response slices built per
// CreateResponse call; the slice is dead once the TBS bytes are marshalled.
var singlesPool = sync.Pool{New: func() any { s := make([]singleResponseASN1, 0, 8); return &s }}

// CreateResponse builds and signs a successful BasicOCSPResponse asserting
// the given single responses, produced at producedAt, echoing nonce if
// non-empty.
func CreateResponse(tmpl *ResponderTemplate, producedAt time.Time, singles []SingleResponse, nonce []byte) ([]byte, error) {
	if tmpl == nil || tmpl.Signer == nil || tmpl.Certificate == nil {
		return nil, errors.New("ocsp: incomplete responder template")
	}
	if len(singles) == 0 {
		return nil, errors.New("ocsp: no single responses")
	}

	var rd responseDataASN1
	rd.ProducedAt = producedAt.UTC().Truncate(time.Second)

	rid, err := tmpl.responderID()
	if err != nil {
		return nil, err
	}
	rd.ResponderID = rid

	sp := singlesPool.Get().(*[]singleResponseASN1)
	rd.Responses = (*sp)[:0]
	defer func() { *sp = rd.Responses[:0]; singlesPool.Put(sp) }()
	for _, s := range singles {
		w, err := singleToASN1(s)
		if err != nil {
			return nil, err
		}
		rd.Responses = append(rd.Responses, w)
	}

	if len(nonce) > 0 {
		nonceDER, err := asn1.Marshal(nonce)
		if err != nil {
			return nil, err
		}
		rd.Extensions = []extensionASN1{{ID: pkixutil.OIDOCSPNonce, Value: nonceDER}}
	}

	tbs, err := asn1.Marshal(rd)
	if err != nil {
		return nil, fmt.Errorf("ocsp: marshal responseData: %w", err)
	}

	sigAlg, sig, err := pkixutil.SignTBS(tmpl.Rand, tmpl.Signer, tbs)
	if err != nil {
		return nil, err
	}

	basic := basicResponseASN1{
		TBSResponseData:    asn1.RawValue{FullBytes: tbs},
		SignatureAlgorithm: sigAlg,
		Signature:          asn1.BitString{Bytes: sig, BitLength: len(sig) * 8},
	}
	for _, c := range tmpl.IncludeCertificates {
		basic.Certificates = append(basic.Certificates, asn1.RawValue{FullBytes: c.Raw})
	}

	basicDER, err := asn1.Marshal(basic)
	if err != nil {
		return nil, fmt.Errorf("ocsp: marshal basicResponse: %w", err)
	}

	return wrapResponseBytes(StatusSuccessful, basicDER)
}

// CreateErrorResponse builds an unsigned OCSP error response (tryLater,
// internalError, ...) — these have no responseBytes at all per RFC 6960.
func CreateErrorResponse(status ResponseStatus) ([]byte, error) {
	if status == StatusSuccessful {
		return nil, errors.New("ocsp: successful responses need CreateResponse")
	}
	// Marshal just the status; the optional responseBytes is omitted.
	type errorResponse struct {
		Status asn1.Enumerated
	}
	der, err := asn1.Marshal(errorResponse{Status: asn1.Enumerated(status)})
	if err != nil {
		return nil, fmt.Errorf("ocsp: marshal error response: %w", err)
	}
	return der, nil
}

func wrapResponseBytes(status ResponseStatus, basicDER []byte) ([]byte, error) {
	w := ocspResponseASN1{
		Status: asn1.Enumerated(status),
		ResponseBytes: responseBytesASN1{
			ResponseType: pkixutil.OIDOCSPBasic,
			Response:     basicDER,
		},
	}
	der, err := asn1.Marshal(w)
	if err != nil {
		return nil, fmt.Errorf("ocsp: marshal response: %w", err)
	}
	return der, nil
}

func singleToASN1(s SingleResponse) (singleResponseASN1, error) {
	idW, err := s.CertID.toASN1()
	if err != nil {
		return singleResponseASN1{}, err
	}
	w := singleResponseASN1{
		CertID:     idW,
		ThisUpdate: s.ThisUpdate.UTC().Truncate(time.Second),
	}
	if !s.NextUpdate.IsZero() {
		w.NextUpdate = s.NextUpdate.UTC().Truncate(time.Second)
	}
	switch s.Status {
	case Good:
		w.CertStatus = asn1.RawValue{Class: asn1.ClassContextSpecific, Tag: 0}
	case Unknown:
		w.CertStatus = asn1.RawValue{Class: asn1.ClassContextSpecific, Tag: 2}
	case Revoked:
		// Reason defaults to the ReasonAbsent sentinel, which matches
		// the struct tag's default and is therefore omitted from the
		// encoding — revocations without a reason code carry none.
		ri := revokedInfoASN1{
			RevocationTime: s.RevokedAt.UTC().Truncate(time.Second),
			Reason:         asn1.Enumerated(pkixutil.ReasonAbsent),
		}
		if s.Reason != pkixutil.ReasonAbsent {
			ri.Reason = asn1.Enumerated(s.Reason)
		}
		riDER, err := asn1.Marshal(ri)
		if err != nil {
			return singleResponseASN1{}, fmt.Errorf("ocsp: marshal revokedInfo: %w", err)
		}
		// Re-tag the SEQUENCE as implicit [1]: keep the contents,
		// replace the outer tag.
		var raw asn1.RawValue
		if _, err := asn1.Unmarshal(riDER, &raw); err != nil {
			return singleResponseASN1{}, err
		}
		w.CertStatus = asn1.RawValue{
			Class:      asn1.ClassContextSpecific,
			Tag:        1,
			IsCompound: true,
			Bytes:      raw.Bytes,
		}
	default:
		return singleResponseASN1{}, fmt.Errorf("ocsp: unsupported cert status %v", s.Status)
	}
	return w, nil
}

// marshalExplicit wraps already-DER-encoded inner bytes in an explicit
// context-specific tag.
func marshalExplicit(tag int, inner []byte) (asn1.RawValue, error) {
	b, err := asn1.Marshal(asn1.RawValue{
		Class:      asn1.ClassContextSpecific,
		Tag:        tag,
		IsCompound: true,
		Bytes:      inner,
	})
	if err != nil {
		return asn1.RawValue{}, err
	}
	return asn1.RawValue{FullBytes: b}, nil
}

// ParseResponse decodes a DER OCSP response. It performs structural
// validation only; signature verification is a separate step
// (CheckSignatureFrom) so that the measurement pipeline can classify
// "parseable but badly signed" separately from "unparseable" — the two
// distinct error classes in Figure 5 of the paper.
func ParseResponse(der []byte) (*Response, error) {
	var w ocspResponseASN1
	rest, err := asn1.Unmarshal(der, &w)
	if err != nil {
		return nil, fmt.Errorf("ocsp: parse response: %w", err)
	}
	if len(rest) != 0 {
		return nil, errors.New("ocsp: trailing data after response")
	}
	resp := &Response{Status: ResponseStatus(w.Status), Raw: der}
	if !resp.Status.Valid() {
		return nil, fmt.Errorf("ocsp: undefined response status %d", int(w.Status))
	}
	if resp.Status != StatusSuccessful {
		return resp, nil
	}
	if !w.ResponseBytes.ResponseType.Equal(pkixutil.OIDOCSPBasic) {
		return nil, fmt.Errorf("ocsp: unsupported response type %v", w.ResponseBytes.ResponseType)
	}

	var basic basicResponseASN1
	rest, err = asn1.Unmarshal(w.ResponseBytes.Response, &basic)
	if err != nil {
		return nil, fmt.Errorf("ocsp: parse basicResponse: %w", err)
	}
	if len(rest) != 0 {
		return nil, errors.New("ocsp: trailing data after basicResponse")
	}

	resp.RawTBS = basic.TBSResponseData.FullBytes
	resp.SignatureAlgorithm = basic.SignatureAlgorithm.Algorithm
	resp.Signature = basic.Signature.RightAlign()

	var rd responseDataASN1
	rest, err = asn1.Unmarshal(basic.TBSResponseData.FullBytes, &rd)
	if err != nil {
		return nil, fmt.Errorf("ocsp: parse responseData: %w", err)
	}
	if len(rest) != 0 {
		return nil, errors.New("ocsp: trailing data after responseData")
	}
	resp.ProducedAt = rd.ProducedAt

	switch rd.ResponderID.Tag {
	case 1: // byName
		resp.ResponderRawName = rd.ResponderID.Bytes
	case 2: // byKey
		var kh []byte
		if _, err := asn1.Unmarshal(rd.ResponderID.Bytes, &kh); err != nil {
			return nil, fmt.Errorf("ocsp: parse responder key hash: %w", err)
		}
		resp.ResponderKeyHash = kh
	default:
		return nil, fmt.Errorf("ocsp: invalid responderID tag %d", rd.ResponderID.Tag)
	}

	if len(rd.Responses) == 0 {
		return nil, errors.New("ocsp: successful response with no single responses")
	}
	resp.Responses = make([]SingleResponse, 0, len(rd.Responses))
	for _, sw := range rd.Responses {
		s, err := singleFromASN1(sw)
		if err != nil {
			return nil, err
		}
		resp.Responses = append(resp.Responses, s)
	}

	if nonceDER := findNonce(rd.Extensions); nonceDER != nil {
		var nonce []byte
		if _, err := asn1.Unmarshal(nonceDER, &nonce); err != nil {
			nonce = nonceDER
		}
		resp.Nonce = nonce
	}

	for _, raw := range basic.Certificates {
		c, err := x509.ParseCertificate(raw.FullBytes)
		if err != nil {
			return nil, fmt.Errorf("ocsp: parse embedded certificate: %w", err)
		}
		resp.Certificates = append(resp.Certificates, c)
	}

	return resp, nil
}

func singleFromASN1(w singleResponseASN1) (SingleResponse, error) {
	id, err := certIDFromASN1(w.CertID)
	if err != nil {
		return SingleResponse{}, err
	}
	s := SingleResponse{
		CertID:     id,
		ThisUpdate: w.ThisUpdate,
		NextUpdate: w.NextUpdate,
		Reason:     pkixutil.ReasonAbsent,
	}
	if w.CertStatus.Class != asn1.ClassContextSpecific {
		return SingleResponse{}, fmt.Errorf("ocsp: certStatus has class %d", w.CertStatus.Class)
	}
	switch w.CertStatus.Tag {
	case 0:
		s.Status = Good
	case 2:
		s.Status = Unknown
	case 1:
		s.Status = Revoked
		// Rebuild the SEQUENCE from the implicitly tagged contents.
		seq, err := asn1.Marshal(asn1.RawValue{
			Class:      asn1.ClassUniversal,
			Tag:        asn1.TagSequence,
			IsCompound: true,
			Bytes:      w.CertStatus.Bytes,
		})
		if err != nil {
			return SingleResponse{}, err
		}
		var ri revokedInfoASN1
		ri.Reason = asn1.Enumerated(pkixutil.ReasonAbsent)
		if _, err := asn1.Unmarshal(seq, &ri); err != nil {
			return SingleResponse{}, fmt.Errorf("ocsp: parse revokedInfo: %w", err)
		}
		s.RevokedAt = ri.RevocationTime
		s.Reason = pkixutil.ReasonCode(ri.Reason)
	default:
		return SingleResponse{}, fmt.Errorf("ocsp: certStatus has tag %d", w.CertStatus.Tag)
	}
	return s, nil
}

// Find returns the SingleResponse matching id, or nil if the response does
// not cover it (a "serial unmatch" in the paper's error taxonomy).
func (r *Response) Find(id CertID) *SingleResponse {
	for i := range r.Responses {
		if r.Responses[i].CertID.Equal(id) {
			return &r.Responses[i]
		}
	}
	return nil
}

// CheckSignatureFrom verifies the response signature assuming issuer is the
// CA that issued the certificate being checked. Per RFC 6960 §4.2.2.2 the
// signature must come either from the issuer itself or from a delegated
// responder: a certificate embedded in the response that is signed by the
// issuer and carries the id-kp-OCSPSigning EKU.
func (r *Response) CheckSignatureFrom(issuer *x509.Certificate) error {
	if r.Status != StatusSuccessful {
		return errors.New("ocsp: cannot verify signature of non-successful response")
	}
	// Direct signature by the issuer?
	directErr := pkixutil.VerifyTBS(issuer.PublicKey, r.SignatureAlgorithm, r.RawTBS, r.Signature)
	if directErr == nil {
		return nil
	}
	// Delegated responder certificate?
	for _, c := range r.Certificates {
		if err := c.CheckSignatureFrom(issuer); err != nil {
			continue
		}
		if !hasOCSPSigningEKU(c) {
			continue
		}
		if err := pkixutil.VerifyTBS(c.PublicKey, r.SignatureAlgorithm, r.RawTBS, r.Signature); err == nil {
			return nil
		}
	}
	return fmt.Errorf("ocsp: signature verification failed: %w", directErr)
}

func hasOCSPSigningEKU(c *x509.Certificate) bool {
	for _, eku := range c.ExtKeyUsage {
		if eku == x509.ExtKeyUsageOCSPSigning {
			return true
		}
	}
	return false
}
