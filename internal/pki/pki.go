// Package pki builds the synthetic certificate-authority hierarchy the
// reproduction measures: root and intermediate CAs, leaf issuance with the
// extensions the paper studies (Authority Information Access with an OCSP
// URL, CRL Distribution Points, and the TLS-Feature "OCSP Must-Staple"
// extension), delegated OCSP responder certificates, and chain
// verification helpers.
//
// All certificates are real DER X.509 produced with crypto/x509; the
// Must-Staple extension bytes are built by hand (RFC 7633) and verified
// round-trip by the package tests.
package pki

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	cryptorand "crypto/rand"
	"crypto/rsa"
	"crypto/sha512"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"fmt"
	"io"
	"math/big"
	"net/url"
	"sync"
	"time"

	"github.com/netmeasure/muststaple/internal/pkixutil"
)

// KeyAlgorithm selects the key family for generated certificates.
type KeyAlgorithm int

const (
	// ECDSAP256 is the default: fast to generate and sign with, which
	// matters when the world contains thousands of certificates.
	ECDSAP256 KeyAlgorithm = iota
	// RSA2048 matches the dominant key type of the 2018 web PKI.
	RSA2048
)

func (a KeyAlgorithm) String() string {
	switch a {
	case ECDSAP256:
		return "ECDSA-P256"
	case RSA2048:
		return "RSA-2048"
	}
	return fmt.Sprintf("keyalg(%d)", int(a))
}

// GenerateKey creates a private key of the given family using rand (nil
// means crypto/rand.Reader). Passing a deterministic reader yields
// reproducible ECDSA keys: the scalar is derived from a fixed-width read,
// sidestepping the deliberate nondeterminism (randutil.MaybeReadByte and
// rejection sampling) inside crypto/ecdsa.GenerateKey. Seeded ECDSA keys
// also sign deterministically (RFC 6979-style derived nonces), so every
// certificate and OCSP response they produce is byte-reproducible — the
// property world.Build's parallel construction relies on. RSA generation
// is inherently non-reproducible and documented as such.
func GenerateKey(rand io.Reader, alg KeyAlgorithm) (crypto.Signer, error) {
	switch alg {
	case ECDSAP256:
		if rand == nil {
			return ecdsa.GenerateKey(elliptic.P256(), cryptorand.Reader)
		}
		return deterministicP256Key(rand)
	case RSA2048:
		if rand == nil {
			rand = cryptorand.Reader
		}
		return rsa.GenerateKey(rand, 2048)
	default:
		return nil, fmt.Errorf("pki: unknown key algorithm %v", alg)
	}
}

// deterministicP256Key derives a P-256 key from exactly 40 bytes of rand:
// d = OS2IP(bytes) mod (N−1) + 1. The 64 bits of surplus width make the
// modular bias negligible; the same reader state always yields the same
// key, which is what makes seeded worlds reproducible.
func deterministicP256Key(rand io.Reader) (*DeterministicSigner, error) {
	var buf [40]byte
	if _, err := io.ReadFull(rand, buf[:]); err != nil {
		return nil, fmt.Errorf("pki: read key material: %w", err)
	}
	curve := elliptic.P256()
	nMinus1 := new(big.Int).Sub(curve.Params().N, big.NewInt(1))
	d := new(big.Int).SetBytes(buf[:])
	d.Mod(d, nMinus1)
	d.Add(d, big.NewInt(1))
	priv := &ecdsa.PrivateKey{D: d}
	priv.Curve = curve
	priv.X, priv.Y = curve.ScalarBaseMult(d.Bytes())
	return &DeterministicSigner{PrivateKey: priv}, nil
}

// DeterministicSigner is an ECDSA P-256 signer whose signatures are a pure
// function of (private key, digest): the nonce is derived RFC 6979-style
// instead of being drawn from the signing entropy source, and the rand
// argument of Sign is ignored. Two builds of a seeded world therefore emit
// byte-identical certificate and response DER, which is what lets the
// parallel world builder be checked bytewise against a serial reference
// build. Signatures verify with standard crypto/ecdsa verification.
type DeterministicSigner struct {
	*ecdsa.PrivateKey
}

// ecdsaSignature is the SEQUENCE { r INTEGER, s INTEGER } signature form.
type ecdsaSignature struct {
	R, S *big.Int
}

// Sign implements crypto.Signer with a derived nonce. digest must already
// be hashed; opts' hash function is not consulted (matching how ECDSA
// signing treats a pre-hashed input).
func (k *DeterministicSigner) Sign(_ io.Reader, digest []byte, _ crypto.SignerOpts) ([]byte, error) {
	curve := k.Curve
	N := curve.Params().N
	z := hashToInt(digest, N)
	// Nonce stream: SHA-512(len(d) || d || digest || counter), widened to
	// 40 bytes and reduced like the key scalar. Same (key, digest) always
	// yields the same k; distinct digests decouple immediately in the
	// hash, so nonces never repeat across messages.
	dBytes := k.D.Bytes()
	nMinus1 := new(big.Int).Sub(N, big.NewInt(1))
	for ctr := uint32(0); ; ctr++ {
		h := sha512.New()
		var lenByte [1]byte
		lenByte[0] = byte(len(dBytes))
		h.Write(lenByte[:])
		h.Write(dBytes)
		h.Write(digest)
		var ctrBytes [4]byte
		ctrBytes[0] = byte(ctr >> 24)
		ctrBytes[1] = byte(ctr >> 16)
		ctrBytes[2] = byte(ctr >> 8)
		ctrBytes[3] = byte(ctr)
		h.Write(ctrBytes[:])
		sum := h.Sum(nil)

		kInt := new(big.Int).SetBytes(sum[:40])
		kInt.Mod(kInt, nMinus1)
		kInt.Add(kInt, big.NewInt(1))

		rx, _ := curve.ScalarBaseMult(kInt.Bytes())
		r := new(big.Int).Mod(rx, N)
		if r.Sign() == 0 {
			continue
		}
		kInv := new(big.Int).ModInverse(kInt, N)
		if kInv == nil {
			continue
		}
		s := new(big.Int).Mul(r, k.D)
		s.Add(s, z)
		s.Mul(s, kInv)
		s.Mod(s, N)
		if s.Sign() == 0 {
			continue
		}
		return asn1.Marshal(ecdsaSignature{R: r, S: s})
	}
}

// hashToInt converts a digest to an integer the way ECDSA does: truncate to
// the bit length of the group order.
func hashToInt(digest []byte, n *big.Int) *big.Int {
	orderBits := n.BitLen()
	orderBytes := (orderBits + 7) / 8
	if len(digest) > orderBytes {
		digest = digest[:orderBytes]
	}
	out := new(big.Int).SetBytes(digest)
	if excess := len(digest)*8 - orderBits; excess > 0 {
		out.Rsh(out, uint(excess))
	}
	return out
}

// CA is a certificate authority able to issue leaves, intermediates,
// delegated OCSP responder certificates, and CRLs.
type CA struct {
	Name        string
	Certificate *x509.Certificate
	Key         crypto.Signer

	// OCSPURL and CRLURL are stamped into issued certificates' AIA and
	// CRLDP extensions.
	OCSPURL string
	CRLURL  string

	rand io.Reader

	mu         sync.Mutex
	nextSerial int64
}

// Config configures NewRootCA / (*CA).NewIntermediate.
type Config struct {
	// Name is the CA's common name, e.g. "Synthetic Root R1".
	Name string
	// KeyAlgorithm defaults to ECDSAP256.
	KeyAlgorithm KeyAlgorithm
	// Rand is the randomness source (nil = crypto/rand.Reader). A
	// seeded reader makes the whole hierarchy reproducible.
	Rand io.Reader
	// NotBefore/NotAfter default to a 10-year window around Now.
	NotBefore, NotAfter time.Time
	// OCSPURL / CRLURL to stamp into certificates this CA issues.
	OCSPURL, CRLURL string
	// SerialBase offsets issued serial numbers so that distinct CAs in
	// a generated world do not collide (serials are only unique per
	// issuer, but distinct bases make test failures easier to read).
	SerialBase int64
}

func (c *Config) fill() {
	if c.NotBefore.IsZero() {
		c.NotBefore = time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.NotAfter.IsZero() {
		c.NotAfter = c.NotBefore.AddDate(10, 0, 0)
	}
	if c.Rand == nil {
		c.Rand = cryptorand.Reader
	}
}

// NewRootCA creates a self-signed root.
func NewRootCA(cfg Config) (*CA, error) {
	cfg.fill()
	key, err := GenerateKey(cfg.Rand, cfg.KeyAlgorithm)
	if err != nil {
		return nil, fmt.Errorf("pki: generate root key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: cfg.Name, Organization: []string{cfg.Name}},
		NotBefore:             cfg.NotBefore,
		NotAfter:              cfg.NotAfter,
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign | x509.KeyUsageDigitalSignature,
	}
	// Signing randomness comes from crypto/rand even in seeded worlds:
	// ECDSA signing would otherwise consume a nondeterministic number of
	// reader bytes, shifting the seeded stream and breaking key
	// reproducibility. Seeded keys are DeterministicSigners that ignore
	// the entropy argument entirely, so seeded certificate DER is still
	// byte-identical across builds.
	der, err := x509.CreateCertificate(cryptorand.Reader, tmpl, tmpl, key.Public(), key)
	if err != nil {
		return nil, fmt.Errorf("pki: create root certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{
		Name:        cfg.Name,
		Certificate: cert,
		Key:         key,
		OCSPURL:     cfg.OCSPURL,
		CRLURL:      cfg.CRLURL,
		rand:        cfg.Rand,
		nextSerial:  cfg.SerialBase + 1000,
	}, nil
}

// NewIntermediate issues a subordinate CA signed by ca.
func (ca *CA) NewIntermediate(cfg Config) (*CA, error) {
	cfg.fill()
	key, err := GenerateKey(cfg.Rand, cfg.KeyAlgorithm)
	if err != nil {
		return nil, fmt.Errorf("pki: generate intermediate key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          ca.takeSerial(),
		Subject:               pkix.Name{CommonName: cfg.Name, Organization: []string{cfg.Name}},
		NotBefore:             cfg.NotBefore,
		NotAfter:              cfg.NotAfter,
		IsCA:                  true,
		BasicConstraintsValid: true,
		MaxPathLenZero:        true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign | x509.KeyUsageDigitalSignature,
	}
	der, err := x509.CreateCertificate(cryptorand.Reader, tmpl, ca.Certificate, key.Public(), ca.Key)
	if err != nil {
		return nil, fmt.Errorf("pki: create intermediate certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{
		Name:        cfg.Name,
		Certificate: cert,
		Key:         key,
		OCSPURL:     cfg.OCSPURL,
		CRLURL:      cfg.CRLURL,
		rand:        cfg.Rand,
		nextSerial:  cfg.SerialBase + 1,
	}, nil
}

func (ca *CA) takeSerial() *big.Int {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	ca.nextSerial++
	return big.NewInt(ca.nextSerial)
}

// LeafOptions controls leaf issuance.
type LeafOptions struct {
	// DNSNames are the subjectAltNames (the first is also the CN).
	DNSNames []string
	// NotBefore/NotAfter default to a 90-day window from the CA's
	// NotBefore (Let's-Encrypt-style).
	NotBefore, NotAfter time.Time
	// MustStaple adds the TLS-Feature status_request extension
	// (OID 1.3.6.1.5.5.7.1.24) — the OCSP Must-Staple extension.
	MustStaple bool
	// OmitOCSP drops the AIA OCSP URL: the 4.6% of valid 2018
	// certificates with no OCSP responder at all.
	OmitOCSP bool
	// OmitCRL drops the CRL Distribution Points extension — Let's
	// Encrypt famously supported only OCSP (paper §5.4, footnote 18).
	OmitCRL bool
	// OCSPURL / CRLURL override the CA defaults when non-empty.
	OCSPURL, CRLURL string
	// KeyAlgorithm defaults to ECDSAP256.
	KeyAlgorithm KeyAlgorithm
	// Serial overrides the CA's serial allocator when non-nil (the
	// consistency study needs specific serials on both CRL and OCSP
	// sides).
	Serial *big.Int
}

// Leaf is an issued end-entity certificate with its private key.
type Leaf struct {
	Certificate *x509.Certificate
	Key         crypto.Signer
	Issuer      *CA
}

// IssueLeaf issues an end-entity certificate.
func (ca *CA) IssueLeaf(opts LeafOptions) (*Leaf, error) {
	if len(opts.DNSNames) == 0 {
		return nil, fmt.Errorf("pki: leaf needs at least one DNS name")
	}
	if opts.NotBefore.IsZero() {
		opts.NotBefore = ca.Certificate.NotBefore
	}
	if opts.NotAfter.IsZero() {
		opts.NotAfter = opts.NotBefore.AddDate(0, 0, 90)
	}
	key, err := GenerateKey(ca.rand, opts.KeyAlgorithm)
	if err != nil {
		return nil, fmt.Errorf("pki: generate leaf key: %w", err)
	}
	serial := opts.Serial
	if serial == nil {
		serial = ca.takeSerial()
	}

	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: opts.DNSNames[0]},
		DNSNames:     opts.DNSNames,
		NotBefore:    opts.NotBefore,
		NotAfter:     opts.NotAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}

	ocspURL := opts.OCSPURL
	if ocspURL == "" {
		ocspURL = ca.OCSPURL
	}
	if !opts.OmitOCSP && ocspURL != "" {
		tmpl.OCSPServer = []string{ocspURL}
	}
	crlURL := opts.CRLURL
	if crlURL == "" {
		crlURL = ca.CRLURL
	}
	if !opts.OmitCRL && crlURL != "" {
		tmpl.CRLDistributionPoints = []string{crlURL}
	}
	if opts.MustStaple {
		ext, err := MustStapleExtension()
		if err != nil {
			return nil, err
		}
		tmpl.ExtraExtensions = append(tmpl.ExtraExtensions, ext)
	}

	der, err := x509.CreateCertificate(cryptorand.Reader, tmpl, ca.Certificate, key.Public(), ca.Key)
	if err != nil {
		return nil, fmt.Errorf("pki: create leaf certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Leaf{Certificate: cert, Key: key, Issuer: ca}, nil
}

// IssueOCSPResponderCert issues a delegated OCSP responder certificate: an
// end-entity certificate signed by the CA with the id-kp-OCSPSigning EKU,
// enabling OCSP signature authority delegation (paper §2.2).
func (ca *CA) IssueOCSPResponderCert(name string, notBefore, notAfter time.Time) (*Leaf, error) {
	key, err := GenerateKey(ca.rand, ECDSAP256)
	if err != nil {
		return nil, err
	}
	if notBefore.IsZero() {
		notBefore = ca.Certificate.NotBefore
	}
	if notAfter.IsZero() {
		notAfter = ca.Certificate.NotAfter
	}
	tmpl := &x509.Certificate{
		SerialNumber: ca.takeSerial(),
		Subject:      pkix.Name{CommonName: name},
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageOCSPSigning},
	}
	der, err := x509.CreateCertificate(cryptorand.Reader, tmpl, ca.Certificate, key.Public(), ca.Key)
	if err != nil {
		return nil, fmt.Errorf("pki: create responder certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Leaf{Certificate: cert, Key: key, Issuer: ca}, nil
}

// tlsFeature is the RFC 7633 TLS feature extension body: a SEQUENCE OF
// INTEGER naming TLS extension numbers the certificate demands. 5 is
// status_request — OCSP stapling.
const tlsFeatureStatusRequest = 5

// MustStapleExtension builds the X.509v3 TLS Feature extension asserting
// status_request — i.e., OCSP Must-Staple.
func MustStapleExtension() (pkix.Extension, error) {
	val, err := asn1.Marshal([]int{tlsFeatureStatusRequest})
	if err != nil {
		return pkix.Extension{}, fmt.Errorf("pki: marshal TLS feature: %w", err)
	}
	return pkix.Extension{Id: pkixutil.OIDExtensionTLSFeature, Value: val}, nil
}

// HasMustStaple reports whether cert carries the TLS-Feature extension with
// status_request — the check the paper runs over the Censys corpus (§4).
func HasMustStaple(cert *x509.Certificate) bool {
	for _, ext := range cert.Extensions {
		if !ext.Id.Equal(pkixutil.OIDExtensionTLSFeature) {
			continue
		}
		var features []int
		if _, err := asn1.Unmarshal(ext.Value, &features); err != nil {
			return false
		}
		for _, f := range features {
			if f == tlsFeatureStatusRequest {
				return true
			}
		}
	}
	return false
}

// OCSPURL returns the first OCSP responder URL in the certificate's AIA
// extension, or "" if the certificate does not support OCSP.
func OCSPURL(cert *x509.Certificate) string {
	if len(cert.OCSPServer) == 0 {
		return ""
	}
	return cert.OCSPServer[0]
}

// SupportsOCSP reports whether the certificate advertises at least one
// well-formed OCSP responder URL.
func SupportsOCSP(cert *x509.Certificate) bool {
	for _, raw := range cert.OCSPServer {
		if u, err := url.Parse(raw); err == nil && u.Scheme != "" && u.Host != "" {
			return true
		}
	}
	return false
}

// VerifyChain verifies leaf against its issuing chain up to the given root,
// at time t.
func VerifyChain(leaf *x509.Certificate, intermediates []*x509.Certificate, root *x509.Certificate, t time.Time) error {
	roots := x509.NewCertPool()
	roots.AddCert(root)
	pool := x509.NewCertPool()
	for _, ic := range intermediates {
		pool.AddCert(ic)
	}
	_, err := leaf.Verify(x509.VerifyOptions{
		Roots:         roots,
		Intermediates: pool,
		CurrentTime:   t,
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	})
	if err != nil {
		return fmt.Errorf("pki: chain verification failed: %w", err)
	}
	return nil
}
