package pki

import (
	"bytes"
	"crypto"
	"crypto/ecdsa"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"math/big"
	"math/rand"
	"testing"
	"time"
)

func TestRootCA(t *testing.T) {
	ca, err := NewRootCA(Config{Name: "Test Root R1"})
	if err != nil {
		t.Fatalf("NewRootCA: %v", err)
	}
	if !ca.Certificate.IsCA {
		t.Error("root is not a CA")
	}
	if ca.Certificate.Subject.CommonName != "Test Root R1" {
		t.Errorf("CN = %q", ca.Certificate.Subject.CommonName)
	}
	if err := ca.Certificate.CheckSignatureFrom(ca.Certificate); err != nil {
		t.Errorf("root self-signature: %v", err)
	}
}

func TestIntermediateAndChain(t *testing.T) {
	root, err := NewRootCA(Config{Name: "Chain Root"})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := root.NewIntermediate(Config{Name: "Chain Intermediate", OCSPURL: "http://ocsp.chain.test"})
	if err != nil {
		t.Fatalf("NewIntermediate: %v", err)
	}
	leaf, err := inter.IssueLeaf(LeafOptions{DNSNames: []string{"chain.test"}})
	if err != nil {
		t.Fatalf("IssueLeaf: %v", err)
	}
	at := leaf.Certificate.NotBefore.Add(time.Hour)
	if err := VerifyChain(leaf.Certificate, []*x509.Certificate{inter.Certificate}, root.Certificate, at); err != nil {
		t.Errorf("VerifyChain: %v", err)
	}
	// Verification must fail without the intermediate.
	if err := VerifyChain(leaf.Certificate, nil, root.Certificate, at); err == nil {
		t.Error("chain should not verify without the intermediate")
	}
	// And against the wrong root.
	wrong, _ := NewRootCA(Config{Name: "Wrong Root"})
	if err := VerifyChain(leaf.Certificate, []*x509.Certificate{inter.Certificate}, wrong.Certificate, at); err == nil {
		t.Error("chain should not verify under the wrong root")
	}
}

func TestMustStapleExtension(t *testing.T) {
	ca, err := NewRootCA(Config{Name: "MS Root", OCSPURL: "http://ocsp.ms.test"})
	if err != nil {
		t.Fatal(err)
	}
	with, err := ca.IssueLeaf(LeafOptions{DNSNames: []string{"staple.test"}, MustStaple: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := ca.IssueLeaf(LeafOptions{DNSNames: []string{"nostaple.test"}})
	if err != nil {
		t.Fatal(err)
	}
	if !HasMustStaple(with.Certificate) {
		t.Error("Must-Staple extension not detected on certificate that has it")
	}
	if HasMustStaple(without.Certificate) {
		t.Error("Must-Staple detected on certificate without it")
	}
	// Check the OID appears among the parsed extensions (i.e., it
	// survived a real x509 encode/parse round trip).
	found := false
	for _, ext := range with.Certificate.Extensions {
		if ext.Id.String() == "1.3.6.1.5.5.7.1.24" {
			found = true
		}
	}
	if !found {
		t.Error("TLS-Feature OID 1.3.6.1.5.5.7.1.24 missing from parsed extensions")
	}
}

func TestAIAAndCRLDP(t *testing.T) {
	ca, err := NewRootCA(Config{Name: "AIA Root", OCSPURL: "http://ocsp.aia.test", CRLURL: "http://crl.aia.test/r.crl"})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(LeafOptions{DNSNames: []string{"aia.test"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := OCSPURL(leaf.Certificate); got != "http://ocsp.aia.test" {
		t.Errorf("OCSPURL = %q", got)
	}
	if !SupportsOCSP(leaf.Certificate) {
		t.Error("SupportsOCSP should be true")
	}
	if len(leaf.Certificate.CRLDistributionPoints) != 1 || leaf.Certificate.CRLDistributionPoints[0] != "http://crl.aia.test/r.crl" {
		t.Errorf("CRLDP = %v", leaf.Certificate.CRLDistributionPoints)
	}

	// Omissions.
	noOCSP, err := ca.IssueLeaf(LeafOptions{DNSNames: []string{"noocsp.test"}, OmitOCSP: true})
	if err != nil {
		t.Fatal(err)
	}
	if SupportsOCSP(noOCSP.Certificate) {
		t.Error("OmitOCSP leaf should not support OCSP")
	}
	noCRL, err := ca.IssueLeaf(LeafOptions{DNSNames: []string{"nocrl.test"}, OmitCRL: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(noCRL.Certificate.CRLDistributionPoints) != 0 {
		t.Error("OmitCRL leaf should have no CRLDP")
	}

	// Per-leaf override.
	ovr, err := ca.IssueLeaf(LeafOptions{DNSNames: []string{"ovr.test"}, OCSPURL: "http://other.ocsp.test"})
	if err != nil {
		t.Fatal(err)
	}
	if got := OCSPURL(ovr.Certificate); got != "http://other.ocsp.test" {
		t.Errorf("override OCSPURL = %q", got)
	}
}

func TestSerialAllocation(t *testing.T) {
	ca, err := NewRootCA(Config{Name: "Serial Root", SerialBase: 50000})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ca.IssueLeaf(LeafOptions{DNSNames: []string{"a.test"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ca.IssueLeaf(LeafOptions{DNSNames: []string{"b.test"}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Certificate.SerialNumber.Cmp(b.Certificate.SerialNumber) == 0 {
		t.Error("two leaves share a serial")
	}
	if a.Certificate.SerialNumber.Int64() <= 50000 {
		t.Errorf("serial %v should exceed the base", a.Certificate.SerialNumber)
	}
	// Explicit serial override.
	want := big.NewInt(123456789)
	c, err := ca.IssueLeaf(LeafOptions{DNSNames: []string{"c.test"}, Serial: want})
	if err != nil {
		t.Fatal(err)
	}
	if c.Certificate.SerialNumber.Cmp(want) != 0 {
		t.Errorf("serial = %v, want %v", c.Certificate.SerialNumber, want)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	// Two CAs built from identically seeded readers should have
	// identical keys (reproducible worlds).
	mk := func() *CA {
		r := rand.New(rand.NewSource(7))
		ca, err := NewRootCA(Config{Name: "Det Root", Rand: r})
		if err != nil {
			t.Fatal(err)
		}
		return ca
	}
	a, b := mk(), mk()
	ka := a.Key.Public().(*ecdsa.PublicKey)
	kb := b.Key.Public().(*ecdsa.PublicKey)
	if ka.X.Cmp(kb.X) != 0 || ka.Y.Cmp(kb.Y) != 0 {
		t.Error("same seed should produce the same CA key")
	}
	// Seeded keys sign deterministically, so the self-signed certificate
	// DER — not just the key — is byte-identical across builds.
	if !bytes.Equal(a.Certificate.Raw, b.Certificate.Raw) {
		t.Error("same seed should produce byte-identical certificate DER")
	}
}

func TestDeterministicSigner(t *testing.T) {
	key, err := GenerateKey(rand.New(rand.NewSource(11)), ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	det, ok := key.(*DeterministicSigner)
	if !ok {
		t.Fatalf("seeded ECDSA key is %T, want *DeterministicSigner", key)
	}
	digest := sha256.Sum256([]byte("tbs bytes"))
	sig1, err := det.Sign(nil, digest[:], crypto.SHA256)
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := det.Sign(nil, digest[:], crypto.SHA256)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sig1, sig2) {
		t.Error("same (key, digest) must produce the same signature")
	}
	other := sha256.Sum256([]byte("different tbs"))
	sig3, err := det.Sign(nil, other[:], crypto.SHA256)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sig1, sig3) {
		t.Error("different digests must produce different signatures")
	}
	// Signatures verify with stock ECDSA verification.
	pub := det.Public().(*ecdsa.PublicKey)
	if !ecdsa.VerifyASN1(pub, digest[:], sig1) {
		t.Error("deterministic signature failed standard verification")
	}
	if !ecdsa.VerifyASN1(pub, other[:], sig3) {
		t.Error("second deterministic signature failed standard verification")
	}
}

func TestRSALeaf(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA key generation is slow")
	}
	ca, err := NewRootCA(Config{Name: "RSA Issuer"})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(LeafOptions{DNSNames: []string{"rsa.test"}, KeyAlgorithm: RSA2048})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := leaf.Key.Public().(*rsa.PublicKey); !ok {
		t.Errorf("leaf key is %T, want RSA", leaf.Key.Public())
	}
}

func TestOCSPResponderCert(t *testing.T) {
	ca, err := NewRootCA(Config{Name: "Delegation Root"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ca.IssueOCSPResponderCert("Delegated Responder", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	hasEKU := false
	for _, eku := range d.Certificate.ExtKeyUsage {
		if eku == x509.ExtKeyUsageOCSPSigning {
			hasEKU = true
		}
	}
	if !hasEKU {
		t.Error("delegated responder certificate lacks OCSPSigning EKU")
	}
	if err := d.Certificate.CheckSignatureFrom(ca.Certificate); err != nil {
		t.Errorf("delegate not signed by CA: %v", err)
	}
}

func TestLeafValidityDefaults(t *testing.T) {
	ca, err := NewRootCA(Config{Name: "Validity Root"})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(LeafOptions{DNSNames: []string{"v.test"}})
	if err != nil {
		t.Fatal(err)
	}
	got := leaf.Certificate.NotAfter.Sub(leaf.Certificate.NotBefore)
	if got != 90*24*time.Hour {
		t.Errorf("default validity = %v, want 90 days", got)
	}
	if _, err := ca.IssueLeaf(LeafOptions{}); err == nil {
		t.Error("leaf without DNS names should fail")
	}
}

func TestKeyAlgorithmString(t *testing.T) {
	if ECDSAP256.String() != "ECDSA-P256" || RSA2048.String() != "RSA-2048" {
		t.Error("KeyAlgorithm string mismatch")
	}
}
