package vulnwindow

import (
	"math"
	"testing"
	"time"
)

func byMech(results []Result) map[Mechanism]Result {
	out := map[Mechanism]Result{}
	for _, r := range results {
		out[r.Mechanism] = r
	}
	return out
}

func TestSimulateShapes(t *testing.T) {
	results := Simulate(Config{Seed: 1, Trials: 5000})
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	m := byMech(results)

	// CRL with 7-day validity: median ≈ 84h (half the period).
	med := m[MechCRL].Windows.Quantile(0.5)
	if med < 70 || med > 98 {
		t.Errorf("CRL median = %vh, want ≈84h", med)
	}

	// Short-lived 90h certs: median ≈ 45h — better than weekly CRLs.
	sl := m[MechShortLived].Windows.Quantile(0.5)
	if sl < 38 || sl > 52 {
		t.Errorf("short-lived median = %vh, want ≈45h", sl)
	}
	if sl >= med {
		t.Error("short-lived certs should beat weekly CRLs")
	}

	// Soft-fail under attack: constant at the cert's remaining life.
	sf := m[MechSoftFailAttacked].Windows
	if sf.Quantile(0.5) != 45*24 || sf.Quantile(0.99) != 45*24 {
		t.Errorf("soft-fail window should be the full 45 days, got median %vh", sf.Quantile(0.5))
	}

	// Every honest mechanism beats attacked soft-fail at the median.
	for _, mech := range []Mechanism{MechCRL, MechOCSPFetch, MechStapling, MechMustStaple, MechShortLived} {
		if got := m[mech].Windows.Quantile(0.5); got >= sf.Quantile(0.5) {
			t.Errorf("%v median %vh should beat soft-fail-under-attack %vh", mech, got, sf.Quantile(0.5))
		}
	}

	// Stapling and Must-Staple share timing in the honest case.
	a := m[MechStapling].Windows.Quantile(0.5)
	b := m[MechMustStaple].Windows.Quantile(0.5)
	if math.Abs(a-b)/a > 0.1 {
		t.Errorf("stapling %vh vs must-staple %vh should be similar", a, b)
	}
}

func TestValidityDistributionMatters(t *testing.T) {
	short := Simulate(Config{Seed: 2, Trials: 4000, ResponderValidities: []time.Duration{24 * time.Hour}})
	long := Simulate(Config{Seed: 2, Trials: 4000, ResponderValidities: []time.Duration{30 * 24 * time.Hour}})
	sm := byMech(short)[MechMustStaple].Windows.Quantile(0.5)
	lm := byMech(long)[MechMustStaple].Windows.Quantile(0.5)
	if sm >= lm {
		t.Errorf("1-day validity (%vh) must beat 30-day validity (%vh)", sm, lm)
	}
	// The >1-month validity hazard the paper flags (§5.4): with 45-day
	// responses a revocation can stay invisible for weeks.
	if lm < 300 {
		t.Errorf("30-day validity median = %vh, want weeks of exposure", lm)
	}
}

func TestDeterminism(t *testing.T) {
	a := Simulate(Config{Seed: 9, Trials: 1000})
	b := Simulate(Config{Seed: 9, Trials: 1000})
	for i := range a {
		if a[i].Windows.Quantile(0.5) != b[i].Windows.Quantile(0.5) {
			t.Fatal("same seed must give identical distributions")
		}
	}
}

func TestMechanismStrings(t *testing.T) {
	for m, want := range map[Mechanism]string{
		MechCRL: "crl", MechOCSPFetch: "ocsp-fetch", MechStapling: "ocsp-stapling",
		MechMustStaple: "must-staple", MechShortLived: "short-lived-certs",
		MechSoftFailAttacked: "soft-fail-under-attack",
	} {
		if m.String() != want {
			t.Errorf("%d = %q", int(m), m.String())
		}
	}
}
