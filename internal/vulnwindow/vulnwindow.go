// Package vulnwindow quantifies the window of vulnerability — how long a
// client keeps accepting a certificate after its CA revokes it — for every
// revocation mechanism the paper discusses: CRLs, client-fetched OCSP,
// OCSP Stapling, OCSP Must-Staple, the short-lived certificates of
// Topalovic et al. (§3), and today's soft-fail reality, where an on-path
// attacker who blocks the revocation check keeps the certificate alive
// indefinitely.
//
// The analysis is a Monte Carlo replay: a compromise/revocation event is
// dropped at a random instant into the caching schedules of a client and a
// server whose parameters (response validity, update interval) are drawn
// from a responder fleet's actual profiles, and the time until the client
// first rejects the certificate is recorded.
package vulnwindow

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/netmeasure/muststaple/internal/stats"
)

// Mechanism is one revocation-dissemination design.
type Mechanism int

const (
	// MechCRL: the client re-downloads the CA's CRL when its cached
	// copy expires (CRL validity period).
	MechCRL Mechanism = iota
	// MechOCSPFetch: the client queries OCSP itself and caches the
	// response for its validity period.
	MechOCSPFetch
	// MechStapling: the server staples; the client trusts the staple
	// for its validity period. Soft-fail clients are still exposed to
	// stripping, but this models the honest-network case.
	MechStapling
	// MechMustStaple: stapling with hard-fail; identical timing to
	// stapling in the honest case, but also holds against an attacker
	// (no soft-fail hole).
	MechMustStaple
	// MechShortLived: no revocation at all; exposure ends when the
	// short-lived certificate expires.
	MechShortLived
	// MechSoftFailAttacked: today's deployed reality under attack: the
	// adversary blocks OCSP and strips staples, the client soft-fails,
	// and the revocation never takes effect (the window is the rest of
	// the certificate's lifetime).
	MechSoftFailAttacked
)

var mechanismNames = map[Mechanism]string{
	MechCRL:              "crl",
	MechOCSPFetch:        "ocsp-fetch",
	MechStapling:         "ocsp-stapling",
	MechMustStaple:       "must-staple",
	MechShortLived:       "short-lived-certs",
	MechSoftFailAttacked: "soft-fail-under-attack",
}

func (m Mechanism) String() string {
	if s, ok := mechanismNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mechanism(%d)", int(m))
}

// Mechanisms lists all mechanisms in presentation order.
func Mechanisms() []Mechanism {
	return []Mechanism{MechCRL, MechOCSPFetch, MechStapling, MechMustStaple, MechShortLived, MechSoftFailAttacked}
}

// Config parameterizes the simulation.
type Config struct {
	// Seed drives the Monte Carlo sampling.
	Seed int64
	// Trials per mechanism; 0 means 20,000.
	Trials int
	// ResponderValidities are OCSP response validity periods sampled
	// per trial — feed it the fleet's actual profile validities so the
	// analysis reflects the measured world. Empty defaults to 7 days.
	ResponderValidities []time.Duration
	// CRLValidity is the CRL publication validity; 0 means 7 days.
	CRLValidity time.Duration
	// ShortLivedLifetime is the short-lived certificate lifetime;
	// 0 means 90 hours (≈4 days, the Topalovic et al. proposal).
	ShortLivedLifetime time.Duration
	// CertRemainingLifetime bounds the soft-fail exposure: the revoked
	// certificate's remaining validity; 0 means 45 days (half of a
	// 90-day Let's-Encrypt-style leaf).
	CertRemainingLifetime time.Duration
}

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 20_000
	}
	return c.Trials
}

func (c Config) crlValidity() time.Duration {
	if c.CRLValidity <= 0 {
		return 7 * 24 * time.Hour
	}
	return c.CRLValidity
}

func (c Config) shortLived() time.Duration {
	if c.ShortLivedLifetime <= 0 {
		return 90 * time.Hour
	}
	return c.ShortLivedLifetime
}

func (c Config) certRemaining() time.Duration {
	if c.CertRemainingLifetime <= 0 {
		return 45 * 24 * time.Hour
	}
	return c.CertRemainingLifetime
}

func (c Config) sampleValidity(rng *rand.Rand) time.Duration {
	if len(c.ResponderValidities) == 0 {
		return 7 * 24 * time.Hour
	}
	return c.ResponderValidities[rng.Intn(len(c.ResponderValidities))]
}

// Result is one mechanism's simulated distribution, in hours.
type Result struct {
	Mechanism Mechanism
	Windows   *stats.CDF // hours; +Inf for never-effective revocations
}

// Simulate runs the Monte Carlo analysis.
func Simulate(cfg Config) []Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Result, 0, len(Mechanisms()))
	for _, m := range Mechanisms() {
		cdf := &stats.CDF{}
		for trial := 0; trial < cfg.trials(); trial++ {
			cdf.Add(simulateOne(m, cfg, rng).Hours())
		}
		out = append(out, Result{Mechanism: m, Windows: cdf})
	}
	return out
}

// infinite is the sentinel duration for revocations that never bite.
const infinite = time.Duration(math.MaxInt64)

// simulateOne drops one revocation event into the caching schedule and
// returns the time until the client rejects the certificate.
func simulateOne(m Mechanism, cfg Config, rng *rand.Rand) time.Duration {
	switch m {
	case MechCRL:
		// The client refreshed its CRL copy at a uniformly random
		// phase of the validity period; it learns of the revocation
		// at the next refresh.
		v := cfg.crlValidity()
		return phaseRemainder(v, rng)

	case MechOCSPFetch:
		// Same schedule with the (sampled) OCSP response validity —
		// plus the responder's own staleness when it pre-generates:
		// the revocation enters responses only at the next update
		// window (validity/2, the common refresh cadence).
		v := cfg.sampleValidity(rng)
		responderLag := phaseRemainder(v/2, rng)
		return responderLag + phaseRemainder(v, rng)

	case MechStapling, MechMustStaple:
		// The server refreshes staples at the half-life; the client
		// trusts whatever staple it is handed, whose residual
		// validity is the server's cache phase.
		v := cfg.sampleValidity(rng)
		responderLag := phaseRemainder(v/2, rng)
		serverPhase := phaseRemainder(v, rng)
		return responderLag + serverPhase

	case MechShortLived:
		// No revocation: exposure ends when the certificate does.
		return phaseRemainder(cfg.shortLived(), rng)

	case MechSoftFailAttacked:
		// The attacker suppresses every revocation signal; the
		// client accepts until the certificate itself expires.
		return cfg.certRemaining()
	}
	return infinite
}

// phaseRemainder returns the time left until the next refresh when the
// event lands at a uniformly random phase of a period: U(0, period).
func phaseRemainder(period time.Duration, rng *rand.Rand) time.Duration {
	if period <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(period)))
}
