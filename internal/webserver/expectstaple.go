package webserver

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Expect-Staple (Scott Helme's draft, modeled on Expect-CT): a site
// advertises, via an HTTP response header, that it intends to staple a
// valid OCSP response on every TLS handshake. User agents that see the
// header note the site as a Known Expect-Staple Host for max-age and,
// on later handshakes, report staple violations to the site's report-uri
// — the operator feedback loop whose absence the paper identifies as the
// reason Must-Staple commitments break silently.

// ExpectStapleHeader is the policy's HTTP response header name.
const ExpectStapleHeader = "Expect-Staple"

// ExpectStaple is one site's Expect-Staple policy.
type ExpectStaple struct {
	// MaxAge is how long a user agent keeps the site in its Known
	// Expect-Staple Hosts list after last seeing the header.
	MaxAge time.Duration
	// ReportURI receives violation reports (POSTed JSON in the draft;
	// the canonical binary codec in this reproduction). Empty means the
	// site enforces without collecting telemetry.
	ReportURI string
	// Enforce distinguishes enforce mode (the UA should hard-fail the
	// connection on a violation) from report-only.
	Enforce bool
}

// HeaderValue renders the policy as the header's directive list, e.g.
//
//	max-age=86400; report-uri="https://reports.example/staple"; enforce
//
// The rendering is canonical: ParseExpectStaple(p.HeaderValue()) == p.
func (p ExpectStaple) HeaderValue() string {
	var b strings.Builder
	b.WriteString("max-age=")
	b.WriteString(strconv.FormatInt(int64(p.MaxAge/time.Second), 10))
	if p.ReportURI != "" {
		b.WriteString(`; report-uri="`)
		b.WriteString(p.ReportURI)
		b.WriteString(`"`)
	}
	if p.Enforce {
		b.WriteString("; enforce")
	}
	return b.String()
}

// ParseExpectStaple parses a header value produced by HeaderValue (or a
// hand-written equivalent). Directives are ';'-separated; max-age is
// required, duplicate directives are rejected, and unknown directives are
// ignored (header fields grow new directives over time).
func ParseExpectStaple(v string) (ExpectStaple, error) {
	var (
		p                             ExpectStaple
		sawMaxAge, sawURI, sawEnforce bool
	)
	for _, part := range strings.Split(v, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, arg, hasArg := strings.Cut(part, "=")
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "max-age":
			if sawMaxAge {
				return ExpectStaple{}, fmt.Errorf("webserver: duplicate max-age directive")
			}
			sawMaxAge = true
			if !hasArg {
				return ExpectStaple{}, fmt.Errorf("webserver: max-age needs a value")
			}
			secs, err := strconv.ParseInt(strings.TrimSpace(arg), 10, 64)
			if err != nil || secs < 0 {
				return ExpectStaple{}, fmt.Errorf("webserver: bad max-age %q", arg)
			}
			p.MaxAge = time.Duration(secs) * time.Second
		case "report-uri":
			if sawURI {
				return ExpectStaple{}, fmt.Errorf("webserver: duplicate report-uri directive")
			}
			sawURI = true
			if !hasArg {
				return ExpectStaple{}, fmt.Errorf("webserver: report-uri needs a value")
			}
			uri := strings.TrimSpace(arg)
			if len(uri) < 2 || uri[0] != '"' || uri[len(uri)-1] != '"' {
				return ExpectStaple{}, fmt.Errorf("webserver: report-uri %q must be quoted", arg)
			}
			p.ReportURI = uri[1 : len(uri)-1]
		case "enforce":
			if sawEnforce {
				return ExpectStaple{}, fmt.Errorf("webserver: duplicate enforce directive")
			}
			if hasArg {
				return ExpectStaple{}, fmt.Errorf("webserver: enforce takes no value")
			}
			sawEnforce = true
			p.Enforce = true
		default:
			// Unknown directive: tolerated, per header-extension custom.
		}
	}
	if !sawMaxAge {
		return ExpectStaple{}, fmt.Errorf("webserver: Expect-Staple header has no max-age")
	}
	return p, nil
}

// ExpectStapleHeaderValue returns the engine's advertised Expect-Staple
// header value; ok is false when the site has no policy configured. The
// header rides on every HTTP response the site serves, independent of
// whether the handshake carried a (valid) staple — that independence is
// what lets a UA note a misconfigured host and then report against it.
func (e *Engine) ExpectStapleHeaderValue() (value string, ok bool) {
	if e.ExpectStaple == nil {
		return "", false
	}
	return e.ExpectStaple.HeaderValue(), true
}
