package webserver

import (
	"errors"
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/clock"
	"github.com/netmeasure/muststaple/internal/ocsp"
	"github.com/netmeasure/muststaple/internal/pki"
	"github.com/netmeasure/muststaple/internal/responder"
)

func TestTable3Matrix(t *testing.T) {
	results, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	byName := map[string]*ExperimentResult{}
	for _, r := range results {
		byName[r.Policy] = r
	}

	apache := byName["apache-2.4.18"]
	// Table 3, Apache column: ✗ (pause conn.), ✓, ✗, ✗.
	if apache.PrefetchesResponse {
		t.Error("Apache must not prefetch")
	}
	if !apache.FirstClientPaused || !apache.FirstClientGotStaple {
		t.Errorf("Apache should pause the first connection and then staple: %+v", apache)
	}
	if !apache.CachesResponses {
		t.Error("Apache caches responses")
	}
	if apache.RespectsNextUpdate {
		t.Error("Apache serves expired responses from cache (bug #62400)")
	}
	if apache.RetainsOnError {
		t.Error("Apache drops the old response on upstream error")
	}

	nginx := byName["nginx-1.13.12"]
	// Table 3, Nginx column: ✗ (no resp. to first client), ✓, ✓, ✓.
	if nginx.PrefetchesResponse {
		t.Error("Nginx must not prefetch")
	}
	if nginx.FirstClientGotStaple {
		t.Error("Nginx gives the first client no staple")
	}
	if nginx.FirstClientPaused {
		t.Error("Nginx does not pause the handshake")
	}
	if !nginx.CachesResponses {
		t.Error("Nginx caches responses")
	}
	if !nginx.RespectsNextUpdate {
		t.Error("Nginx respects nextUpdate")
	}
	if !nginx.RetainsOnError {
		t.Error("Nginx retains the old response on error")
	}

	correct := byName["correct"]
	// The §8 recommendation passes everything.
	if !correct.PrefetchesResponse || !correct.FirstClientGotStaple ||
		!correct.CachesResponses || !correct.RespectsNextUpdate || !correct.RetainsOnError {
		t.Errorf("correct policy should pass all experiments: %+v", correct)
	}
}

// engineFixture builds an engine against a live in-process responder.
type engineFixture struct {
	clk  *clock.Simulated
	leaf *pki.Leaf
	fail bool
	eng  *Engine
}

func newEngineFixture(t *testing.T, policy Policy, validity time.Duration) *engineFixture {
	t.Helper()
	t0 := time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	clk := clock.NewSimulated(t0)
	ca, err := pki.NewRootCA(pki.Config{Name: "Engine CA", OCSPURL: "http://ocsp.engine.test"})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(pki.LeafOptions{DNSNames: []string{"engine.test"}, NotBefore: t0.AddDate(0, -1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	db := responder.NewDB()
	db.AddIssued(leaf.Certificate.SerialNumber, leaf.Certificate.NotAfter)
	resp := responder.New("ocsp.engine.test", ca, db, clk, responder.Profile{Validity: validity, ThisUpdateOffset: time.Second})
	inner, err := ResponderFetcher(resp, leaf)
	if err != nil {
		t.Fatal(err)
	}
	fx := &engineFixture{clk: clk, leaf: leaf}
	fx.eng = NewEngine(leaf, policy, func() ([]byte, error) {
		if fx.fail {
			return nil, errors.New("upstream down")
		}
		return inner()
	}, clk)
	return fx
}

func TestEngineStapleValidatesAgainstOCSP(t *testing.T) {
	fx := newEngineFixture(t, CorrectPolicy(), 4*time.Hour)
	if err := fx.eng.Start(); err != nil {
		t.Fatal(err)
	}
	staple := fx.eng.StapleForHandshake()
	if staple == nil {
		t.Fatal("no staple")
	}
	resp, err := ocsp.ParseResponse(staple)
	if err != nil {
		t.Fatalf("staple does not parse: %v", err)
	}
	if err := resp.CheckSignatureFrom(fx.leaf.Issuer.Certificate); err != nil {
		t.Errorf("staple signature: %v", err)
	}
	if resp.Responses[0].CertID.Serial.Cmp(fx.leaf.Certificate.SerialNumber) != 0 {
		t.Error("staple covers the wrong serial")
	}
}

func TestNginxRateLimitServesExpired(t *testing.T) {
	// §7.2 footnote 28: with validity < 5 minutes, Nginx's refresh rate
	// limit makes clients receive expired cached responses.
	fx := newEngineFixture(t, NginxPolicy(), 2*time.Minute)
	// First client triggers the async fetch.
	if got := fx.eng.StapleForHandshake(); got != nil {
		t.Fatal("first nginx client should get no staple")
	}
	fx.eng.WaitIdle()
	// Second client (validity still good) gets the cached staple.
	fx.clk.Advance(time.Minute)
	if got := fx.eng.StapleForHandshake(); got == nil {
		t.Fatal("second client should get the cached staple")
	}
	// Third client: the response is expired (2 min validity) but the 5
	// minute rate limit blocks a refresh — Nginx staples expired bytes.
	fx.clk.Advance(3 * time.Minute)
	staple := fx.eng.StapleForHandshake()
	if staple == nil {
		t.Fatal("rate-limited nginx should still staple the (expired) cache")
	}
	if !stapleIsExpired(staple, fx.clk.Now()) {
		t.Error("expected an expired staple under rate limiting")
	}
	// After the rate limit lapses, a fresh response appears.
	fx.clk.Advance(5 * time.Minute)
	staple = fx.eng.StapleForHandshake()
	fx.eng.WaitIdle()
	staple = fx.eng.StapleForHandshake()
	if staple == nil || stapleIsExpired(staple, fx.clk.Now()) {
		t.Error("after the rate limit, nginx should staple a fresh response")
	}
}

func TestApacheStaplesUpstreamErrorResponse(t *testing.T) {
	// §7.2: when the responder returns an OCSP error (e.g. tryLater),
	// Apache serves the error response itself.
	t0 := time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	clk := clock.NewSimulated(t0)
	ca, err := pki.NewRootCA(pki.Config{Name: "TryLater CA", OCSPURL: "http://ocsp.trylater.test"})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(pki.LeafOptions{DNSNames: []string{"trylater.test"}, NotBefore: t0.AddDate(0, -1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	db := responder.NewDB()
	db.AddIssued(leaf.Certificate.SerialNumber, leaf.Certificate.NotAfter)
	resp := responder.New("ocsp.trylater.test", ca, db, clk, responder.Profile{ErrorStatus: ocsp.StatusTryLater})
	fetch, err := ResponderFetcher(resp, leaf)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(leaf, ApachePolicy(), fetch, clk)
	staple := eng.StapleForHandshake() // paused first connection
	if staple == nil {
		t.Fatal("Apache should staple the error response bytes")
	}
	parsed, err := ocsp.ParseResponse(staple)
	if err != nil {
		t.Fatalf("stapled error response should parse: %v", err)
	}
	if parsed.Status != ocsp.StatusTryLater {
		t.Errorf("stapled status = %v, want tryLater", parsed.Status)
	}
}

func TestEngineTLSConfigErrors(t *testing.T) {
	e := NewEngine(nil, ApachePolicy(), nil, nil)
	if _, err := e.TLSConfig(); err == nil {
		t.Error("TLSConfig without a leaf should fail")
	}
}

func TestHTTPFetcherAgainstRealServer(t *testing.T) {
	// End-to-end over real HTTP: responder behind httptest, fetched by
	// HTTPFetcher, stapled by the engine, verified by the client.
	fx := newEngineFixture(t, CorrectPolicy(), 4*time.Hour)
	// Swap in an HTTP fetcher against a real listener.
	srvResp := responderForLeaf(t, fx)
	fetch, stop := httpFetcherFor(t, fx.leaf, srvResp)
	defer stop()
	fx.eng.Fetch = fetch
	if err := fx.eng.Start(); err != nil {
		t.Fatal(err)
	}
	staple := fx.eng.StapleForHandshake()
	if staple == nil {
		t.Fatal("no staple over real HTTP")
	}
	if _, err := ocsp.ParseResponse(staple); err != nil {
		t.Fatal(err)
	}
}

func TestFetcherConstructorsValidate(t *testing.T) {
	ca, err := pki.NewRootCA(pki.Config{Name: "NoURL CA"}) // no OCSP URL
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(pki.LeafOptions{DNSNames: []string{"nourl.test"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HTTPFetcher(nil, leaf); err == nil {
		t.Error("HTTPFetcher should reject a leaf without an OCSP URL")
	}
}
