package webserver

import (
	"context"
	"crypto"
	"errors"
	"fmt"
	"net/http"

	"github.com/netmeasure/muststaple/internal/ocsp"
	"github.com/netmeasure/muststaple/internal/pki"
	"github.com/netmeasure/muststaple/internal/responder"
)

// HTTPFetcher builds a Fetcher that requests the leaf's status from its
// AIA responder URL over real HTTP — what production servers do.
func HTTPFetcher(client *http.Client, leaf *pki.Leaf) (Fetcher, error) {
	url := pki.OCSPURL(leaf.Certificate)
	if url == "" {
		return nil, errors.New("webserver: leaf has no OCSP URL")
	}
	return HTTPFetcherURL(client, leaf, url)
}

// HTTPFetcherURL is HTTPFetcher with an explicit responder URL, for
// deployments where the responder is fronted elsewhere than the AIA says.
func HTTPFetcherURL(client *http.Client, leaf *pki.Leaf, url string) (Fetcher, error) {
	req, err := ocsp.NewRequest(leaf.Certificate, leaf.Issuer.Certificate, crypto.SHA1)
	if err != nil {
		return nil, err
	}
	return func() ([]byte, error) {
		res, err := ocsp.Fetch(context.Background(), client, http.MethodPost, url, req)
		if err != nil {
			return nil, err
		}
		if res.HTTPStatus != http.StatusOK {
			return nil, fmt.Errorf("webserver: responder HTTP %d", res.HTTPStatus)
		}
		return res.Body, nil
	}, nil
}

// ResponderFetcher builds a Fetcher that calls an in-process responder
// directly — the simulated-world path, exercising the same responder code
// without HTTP framing.
func ResponderFetcher(r *responder.Responder, leaf *pki.Leaf) (Fetcher, error) {
	req, err := ocsp.NewRequest(leaf.Certificate, leaf.Issuer.Certificate, crypto.SHA1)
	if err != nil {
		return nil, err
	}
	reqDER, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	return func() ([]byte, error) {
		res, err := r.Respond(context.Background(), reqDER)
		if err != nil {
			return nil, err
		}
		if len(res.DER) == 0 {
			return nil, errors.New("webserver: responder returned empty body")
		}
		return res.DER, nil
	}, nil
}
