package webserver

import (
	"testing"
	"time"
)

func TestExpectStapleHeaderRoundTrip(t *testing.T) {
	cases := []ExpectStaple{
		{MaxAge: 24 * time.Hour},
		{MaxAge: 24 * time.Hour, Enforce: true},
		{MaxAge: 7 * 24 * time.Hour, ReportURI: "https://reports.example/staple"},
		{MaxAge: time.Second, ReportURI: "http://r.test/es", Enforce: true},
		{MaxAge: 0},
	}
	for _, p := range cases {
		v := p.HeaderValue()
		got, err := ParseExpectStaple(v)
		if err != nil {
			t.Fatalf("ParseExpectStaple(%q): %v", v, err)
		}
		if got != p {
			t.Fatalf("round trip through %q: got %+v, want %+v", v, got, p)
		}
	}
}

func TestExpectStapleHeaderRendering(t *testing.T) {
	p := ExpectStaple{MaxAge: 86400 * time.Second, ReportURI: "https://reports.example/staple", Enforce: true}
	want := `max-age=86400; report-uri="https://reports.example/staple"; enforce`
	if got := p.HeaderValue(); got != want {
		t.Fatalf("HeaderValue = %q, want %q", got, want)
	}
}

func TestParseExpectStapleErrors(t *testing.T) {
	bad := []string{
		"",                                 // no max-age
		"enforce",                          // no max-age
		"max-age",                          // missing value
		"max-age=abc",                      // non-numeric
		"max-age=-5",                       // negative
		"max-age=10; max-age=20",           // duplicate
		`max-age=10; report-uri=no-quotes`, // unquoted URI
		`max-age=10; report-uri`,           // missing value
		`max-age=10; report-uri="a"; report-uri="b"`, // duplicate
		"max-age=10; enforce=yes",                    // enforce takes no value
		"max-age=10; enforce; enforce",               // duplicate
	}
	for _, v := range bad {
		if _, err := ParseExpectStaple(v); err == nil {
			t.Errorf("ParseExpectStaple(%q) accepted", v)
		}
	}

	// Unknown directives and loose whitespace are tolerated.
	got, err := ParseExpectStaple(` max-age=60 ;  Report-URI="http://r.test" ; preload ; enforce `)
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectStaple{MaxAge: time.Minute, ReportURI: "http://r.test", Enforce: true}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestEngineExpectStapleHeaderValue(t *testing.T) {
	fx := newEngineFixture(t, CorrectPolicy(), 4*time.Hour)
	if v, ok := fx.eng.ExpectStapleHeaderValue(); ok {
		t.Fatalf("engine without policy advertised %q", v)
	}
	fx.eng.ExpectStaple = &ExpectStaple{MaxAge: time.Hour, ReportURI: "http://r.test/es"}
	v, ok := fx.eng.ExpectStapleHeaderValue()
	if !ok {
		t.Fatal("engine with policy advertised nothing")
	}
	if _, err := ParseExpectStaple(v); err != nil {
		t.Fatalf("advertised header does not parse: %v", err)
	}
}

// TestStaleServingCDNServesExpired pins the serve-stale CDN tier: when
// the upstream responder dies, the cached staple keeps being served past
// its nextUpdate (RespectNextUpdate=false + RetainOnError), and
// RefreshFailing reports the outage.
func TestStaleServingCDNServesExpired(t *testing.T) {
	fx := newEngineFixture(t, StaleServingCDNPolicy(), 2*time.Hour)
	if err := fx.eng.Start(); err != nil {
		t.Fatal(err)
	}
	if fx.eng.StapleForHandshake() == nil {
		t.Fatal("prefetching CDN should staple immediately")
	}
	if fx.eng.RefreshFailing() {
		t.Fatal("RefreshFailing true while upstream healthy")
	}

	// Upstream dies; advance well past nextUpdate. Refreshes fail, the
	// stale staple stays.
	fx.fail = true
	fx.clk.Advance(6 * time.Hour)
	staple := fx.eng.StapleForHandshake()
	fx.eng.WaitIdle()
	if staple == nil {
		t.Fatal("serve-stale CDN dropped its cached staple during the outage")
	}
	// The refresh attempt above has failed by WaitIdle.
	if !fx.eng.RefreshFailing() {
		t.Fatal("RefreshFailing false during outage")
	}

	// Upstream recovers: the next handshake triggers a refresh and the
	// failure flag clears.
	fx.fail = false
	fx.clk.Advance(2 * time.Hour)
	if fx.eng.StapleForHandshake() == nil {
		t.Fatal("no staple after recovery")
	}
	fx.eng.WaitIdle()
	if fx.eng.RefreshFailing() {
		t.Fatal("RefreshFailing still set after successful refresh")
	}
}
