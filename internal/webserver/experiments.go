package webserver

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/netmeasure/muststaple/internal/clock"
	"github.com/netmeasure/muststaple/internal/ocsp"
	"github.com/netmeasure/muststaple/internal/pki"
	"github.com/netmeasure/muststaple/internal/responder"
)

// HandshakeStaple performs one real TLS handshake against cfg (over an
// in-memory pipe) and returns the stapled OCSP response the server
// presented, if any. The client trusts root and validates at virtual time
// at, so campaigns in 2018 virtual time work regardless of the wall clock.
func HandshakeStaple(cfg *tls.Config, root *x509.Certificate, serverName string, at time.Time) ([]byte, error) {
	cliConn, srvConn := net.Pipe()
	defer cliConn.Close()
	defer srvConn.Close()

	srv := tls.Server(srvConn, cfg)
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Handshake() }()

	pool := x509.NewCertPool()
	pool.AddCert(root)
	cli := tls.Client(cliConn, &tls.Config{
		RootCAs:    pool,
		ServerName: serverName,
		Time:       func() time.Time { return at },
	})
	if err := cli.Handshake(); err != nil {
		return nil, fmt.Errorf("webserver: client handshake: %w", err)
	}
	if err := <-srvErr; err != nil {
		return nil, fmt.Errorf("webserver: server handshake: %w", err)
	}
	return cli.ConnectionState().OCSPResponse, nil
}

// ExperimentResult is one row of Table 3, measured (not assumed) by
// driving real handshakes against an engine running the policy.
type ExperimentResult struct {
	Policy string

	// PrefetchesResponse: did the server fetch an OCSP response before
	// the first client connected? (Table 3 row 1: ✗ for both.)
	PrefetchesResponse bool
	// FirstClientPaused: the first client's handshake blocked on the
	// fetch (Apache's behavior when not prefetching).
	FirstClientPaused bool
	// FirstClientGotStaple: whether the very first client received a
	// stapled response at all (✗ for Nginx).
	FirstClientGotStaple bool
	// CachesResponses: a second handshake inside the validity window
	// triggered no new fetch (row 2: ✓ for both).
	CachesResponses bool
	// RespectsNextUpdate: after the cached response expired, the server
	// did not staple the expired bytes (row 3: ✗ Apache, ✓ Nginx).
	RespectsNextUpdate bool
	// RetainsOnError: with the responder down after a valid fetch, the
	// server kept stapling the old valid response (row 4: ✗ Apache,
	// ✓ Nginx).
	RetainsOnError bool
}

// experimentFixture wires a CA, leaf, responder, and a failable fetcher.
type experimentFixture struct {
	clk   *clock.Simulated
	leaf  *pki.Leaf
	root  *x509.Certificate
	fail  bool
	fetch Fetcher
}

func newExperimentFixture(validity time.Duration) (*experimentFixture, error) {
	t0 := time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	clk := clock.NewSimulated(t0)
	ca, err := pki.NewRootCA(pki.Config{Name: "Server Experiment CA", OCSPURL: "http://ocsp.exp.test"})
	if err != nil {
		return nil, err
	}
	leaf, err := ca.IssueLeaf(pki.LeafOptions{
		DNSNames:   []string{"www.exp.test"},
		NotBefore:  t0.AddDate(0, -1, 0),
		MustStaple: true,
	})
	if err != nil {
		return nil, err
	}
	db := responder.NewDB()
	db.AddIssued(leaf.Certificate.SerialNumber, leaf.Certificate.NotAfter)
	// A short thisUpdate margin keeps short-validity responses fresh at
	// issuance (the default 1-hour backdating would make a 30-minute
	// response expired at birth).
	resp := responder.New("ocsp.exp.test", ca, db, clk, responder.Profile{Validity: validity, ThisUpdateOffset: time.Minute})
	inner, err := ResponderFetcher(resp, leaf)
	if err != nil {
		return nil, err
	}
	f := &experimentFixture{clk: clk, leaf: leaf, root: ca.Certificate}
	f.fetch = func() ([]byte, error) {
		if f.fail {
			return nil, errors.New("simulated responder outage")
		}
		return inner()
	}
	return f, nil
}

// RunExperiments measures one policy through the four Table 3 experiments.
func RunExperiments(policy Policy) (*ExperimentResult, error) {
	res := &ExperimentResult{Policy: policy.Name}

	// Experiment 1+2: prefetch, first-client behavior, caching.
	fx, err := newExperimentFixture(6 * time.Hour)
	if err != nil {
		return nil, err
	}
	eng := NewEngine(fx.leaf, policy, fx.fetch, fx.clk)
	if err := eng.Start(); err != nil {
		return nil, err
	}
	res.PrefetchesResponse = eng.FetchCount() > 0

	cfg, err := eng.TLSConfig()
	if err != nil {
		return nil, err
	}
	before := eng.FetchCount()
	staple1, err := HandshakeStaple(cfg, fx.root, "www.exp.test", fx.clk.Now())
	if err != nil {
		return nil, err
	}
	eng.WaitIdle()
	res.FirstClientGotStaple = len(staple1) > 0
	// "Paused" = the fetch happened inside the first handshake and the
	// client still got a staple without prefetching.
	res.FirstClientPaused = !res.PrefetchesResponse && res.FirstClientGotStaple && eng.FetchCount() > before

	// Second client, still within validity: must be served from cache.
	fx.clk.Advance(time.Minute)
	countBefore := eng.FetchCount()
	staple2, err := HandshakeStaple(cfg, fx.root, "www.exp.test", fx.clk.Now())
	if err != nil {
		return nil, err
	}
	res.CachesResponses = len(staple2) > 0 && eng.FetchCount() == countBefore

	// Experiment 3: respect of nextUpdate. Short-validity responses
	// (30 min) with a healthy upstream: after the staple expires — but
	// before Apache's one-hour response cache rolls over — does the
	// server keep stapling the expired bytes (Apache Bugzilla #62400)
	// or fetch a fresh response (Nginx)? Detected by parsing what the
	// client actually received in the handshake.
	fx3, err := newExperimentFixture(30 * time.Minute)
	if err != nil {
		return nil, err
	}
	eng3 := NewEngine(fx3.leaf, policy, fx3.fetch, fx3.clk)
	if err := eng3.Start(); err != nil {
		return nil, err
	}
	cfg3, err := eng3.TLSConfig()
	if err != nil {
		return nil, err
	}
	if _, err := HandshakeStaple(cfg3, fx3.root, "www.exp.test", fx3.clk.Now()); err != nil {
		return nil, err
	}
	eng3.WaitIdle()
	fx3.clk.Advance(40 * time.Minute) // past nextUpdate, inside Apache's cache lifetime
	stapleAfterExpiry, err := HandshakeStaple(cfg3, fx3.root, "www.exp.test", fx3.clk.Now())
	if err != nil {
		return nil, err
	}
	eng3.WaitIdle()
	res.RespectsNextUpdate = !stapleIsExpired(stapleAfterExpiry, fx3.clk.Now())

	// Experiment 4: retain-on-error. Fresh fixture, long validity; kill
	// the upstream, force a refresh attempt, and see whether the old
	// (still valid) staple survives.
	fx4, err := newExperimentFixture(24 * time.Hour)
	if err != nil {
		return nil, err
	}
	eng4 := NewEngine(fx4.leaf, policy, fx4.fetch, fx4.clk)
	if err := eng4.Start(); err != nil {
		return nil, err
	}
	cfg4, err := eng4.TLSConfig()
	if err != nil {
		return nil, err
	}
	if _, err := HandshakeStaple(cfg4, fx4.root, "www.exp.test", fx4.clk.Now()); err != nil {
		return nil, err
	}
	eng4.WaitIdle()
	fx4.fail = true
	// Advance past the refresh trigger (Apache's cache lifetime) but
	// keep the response valid.
	fx4.clk.Advance(90 * time.Minute)
	stapleAfterError, err := HandshakeStaple(cfg4, fx4.root, "www.exp.test", fx4.clk.Now())
	if err != nil {
		return nil, err
	}
	eng4.WaitIdle()
	res.RetainsOnError = len(stapleAfterError) > 0
	return res, nil
}

// stapleIsExpired reports whether the stapled bytes parse as an OCSP
// response whose first single response is past its nextUpdate at now.
func stapleIsExpired(staple []byte, now time.Time) bool {
	if len(staple) == 0 {
		return false
	}
	resp, err := ocsp.ParseResponse(staple)
	if err != nil || resp.Status != ocsp.StatusSuccessful || len(resp.Responses) == 0 {
		return true // an unusable staple is as bad as an expired one
	}
	return !resp.Responses[0].ValidAt(now)
}

// Table3 runs the full experiment matrix over the modelled policies.
func Table3() ([]*ExperimentResult, error) {
	var out []*ExperimentResult
	for _, p := range []Policy{ApachePolicy(), NginxPolicy(), CorrectPolicy()} {
		r, err := RunExperiments(p)
		if err != nil {
			return nil, fmt.Errorf("webserver: %s: %w", p.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
