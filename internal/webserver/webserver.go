// Package webserver models how web server software implements OCSP
// Stapling, reproducing the behavioral differences the paper measures in
// §7.2 (Table 3) between Apache 2.4.18 and Nginx 1.13.12, plus the
// "correct" policy the paper recommends in §8 (prefetch on startup,
// respect nextUpdate, retain the last valid response across upstream
// errors).
//
// The engine serves real TLS: its *tls.Config staples the engine's current
// response into the handshake via GetCertificate, so the browser models in
// internal/browser and the Table 3 experiments observe exactly what a real
// client would.
package webserver

import (
	"crypto/tls"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/netmeasure/muststaple/internal/clock"
	"github.com/netmeasure/muststaple/internal/ocsp"
	"github.com/netmeasure/muststaple/internal/pki"
)

// Policy captures a server implementation's stapling behavior.
type Policy struct {
	// Name identifies the modelled software.
	Name string

	// Prefetch fetches the OCSP response at startup, before any client
	// connects. Neither Apache nor Nginx does this (Table 3 row 1).
	Prefetch bool

	// PauseFirstConnection blocks the TLS handshake of the first client
	// while fetching (Apache). When false and no response is cached,
	// the first client simply gets no staple and a background fetch is
	// triggered (Nginx).
	PauseFirstConnection bool

	// RespectNextUpdate discards cached responses at their nextUpdate
	// (Nginx). When false the server keeps serving expired responses
	// from its cache (Apache — the bug the authors reported as
	// Apache Bugzilla #62400).
	RespectNextUpdate bool

	// RetainOnError keeps the previous (still valid) response when a
	// refresh attempt fails (Nginx). When false the cache is dropped:
	// the server then staples nothing (upstream unreachable) or staples
	// the error response itself (upstream returned an OCSP error) —
	// both Apache behaviors.
	RetainOnError bool

	// CacheLifetime is how long a fetched response is served before a
	// refresh is attempted, independent of nextUpdate (Apache's
	// response-age cache, default 1 hour).
	CacheLifetime time.Duration

	// MinRefreshInterval rate-limits refreshes (Nginx refreshes at most
	// once every 5 minutes, so short-validity responses can be served
	// expired — §7.2 footnote 28).
	MinRefreshInterval time.Duration
}

// ApachePolicy models Apache 2.4.18 mod_ssl.
func ApachePolicy() Policy {
	return Policy{
		Name:                 "apache-2.4.18",
		Prefetch:             false,
		PauseFirstConnection: true,
		RespectNextUpdate:    false,
		RetainOnError:        false,
		CacheLifetime:        time.Hour,
	}
}

// NginxPolicy models Nginx 1.13.12.
func NginxPolicy() Policy {
	return Policy{
		Name:                 "nginx-1.13.12",
		Prefetch:             false,
		PauseFirstConnection: false,
		RespectNextUpdate:    true,
		RetainOnError:        true,
		MinRefreshInterval:   5 * time.Minute,
	}
}

// CorrectPolicy is the §8 recommendation: prefetch, respect expiry, retain
// the last good response while retrying errors.
func CorrectPolicy() Policy {
	return Policy{
		Name:                 "correct",
		Prefetch:             true,
		PauseFirstConnection: true, // never triggers: prefetch fills the cache
		RespectNextUpdate:    true,
		RetainOnError:        true,
	}
}

// StaleServingCDNPolicy models a serve-stale-while-revalidating CDN
// stapling tier: refresh on a fixed cadence like Apache, but keep serving
// the last response — even past its nextUpdate — while the upstream
// responder is failing. During a long responder outage this is the
// configuration that staples expired responses indefinitely (the
// responder-outage staleness class of the Expect-Staple telemetry
// pipeline), where Apache staples nothing and Nginx withholds the expired
// staple.
func StaleServingCDNPolicy() Policy {
	return Policy{
		Name:                 "cdn-serve-stale",
		Prefetch:             true,
		PauseFirstConnection: true,
		RespectNextUpdate:    false,
		RetainOnError:        true,
		CacheLifetime:        time.Hour,
	}
}

// Fetcher obtains a fresh OCSP response DER for the server's certificate.
// Implementations fetch over HTTP from the CA's responder; tests inject
// failures.
type Fetcher func() ([]byte, error)

// staple is one cached OCSP response.
type staple struct {
	der        []byte
	nextUpdate time.Time // zero if blank
	fetchedAt  time.Time
	isError    bool // an OCSP error response (tryLater etc.)
}

func (s *staple) expired(now time.Time) bool {
	return !s.nextUpdate.IsZero() && now.After(s.nextUpdate)
}

// Engine is a stapling web server instance.
type Engine struct {
	Leaf   *pki.Leaf
	Policy Policy
	Fetch  Fetcher
	Clock  clock.Clock

	// ExpectStaple, when non-nil, is the site's Expect-Staple policy: the
	// engine advertises it on every response (see ExpectStapleHeaderValue)
	// so user agents note the host and report staple violations to its
	// report-uri.
	ExpectStaple *ExpectStaple

	mu             sync.Mutex
	cached         *staple
	lastAttempt    time.Time
	fetchCount     int
	lastRefreshErr error
	asyncWG        sync.WaitGroup
}

// NewEngine builds an engine; Start must be called before serving.
func NewEngine(leaf *pki.Leaf, policy Policy, fetch Fetcher, clk clock.Clock) *Engine {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Engine{Leaf: leaf, Policy: policy, Fetch: fetch, Clock: clk}
}

// Start performs startup work: prefetching when the policy calls for it.
func (e *Engine) Start() error {
	if !e.Policy.Prefetch {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.refreshLocked()
}

// FetchCount reports how many upstream fetches the engine has made — the
// observable the Table 3 experiments assert on.
func (e *Engine) FetchCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fetchCount
}

// WaitIdle blocks until background fetches complete (test determinism).
func (e *Engine) WaitIdle() { e.asyncWG.Wait() }

// refreshLocked fetches a fresh response and applies the policy's error
// handling. Callers hold e.mu.
func (e *Engine) refreshLocked() error {
	e.fetchCount++
	e.lastAttempt = e.Clock.Now()
	der, err := e.Fetch()
	if err != nil {
		e.lastRefreshErr = err
		if !e.Policy.RetainOnError {
			// Apache: drop the old response entirely.
			e.cached = nil
		}
		return err
	}
	parsed, perr := ocsp.ParseResponse(der)
	if perr != nil || parsed.Status != ocsp.StatusSuccessful || len(parsed.Responses) == 0 {
		if e.Policy.RetainOnError {
			e.lastRefreshErr = fmt.Errorf("webserver: upstream returned unusable response")
			return e.lastRefreshErr
		}
		// Apache: cache and staple the error response itself.
		e.cached = &staple{der: der, fetchedAt: e.Clock.Now(), isError: true}
		e.lastRefreshErr = nil
		return nil
	}
	e.cached = &staple{
		der:        der,
		nextUpdate: parsed.Responses[0].NextUpdate,
		fetchedAt:  e.Clock.Now(),
	}
	e.lastRefreshErr = nil
	return nil
}

// RefreshFailing reports whether the engine's most recent upstream fetch
// failed — the server-side signal that a stale staple is being served
// because the responder is unreachable, not because the server never
// refreshes. Violation classification uses it to tell responder-outage
// staleness from a plain expired window.
func (e *Engine) RefreshFailing() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastRefreshErr != nil
}

// refreshDueLocked decides whether the policy wants a refresh now.
func (e *Engine) refreshDueLocked(now time.Time) bool {
	if e.cached == nil {
		return true
	}
	if e.Policy.MinRefreshInterval > 0 && now.Sub(e.lastAttempt) < e.Policy.MinRefreshInterval {
		return false
	}
	if e.Policy.RespectNextUpdate && e.cached.expired(now) {
		return true
	}
	if e.Policy.CacheLifetime > 0 && now.Sub(e.cached.fetchedAt) >= e.Policy.CacheLifetime {
		return true
	}
	if e.cached.isError {
		return true
	}
	return false
}

// StapleForHandshake returns the bytes to staple into a TLS handshake
// starting now, applying the full policy state machine. A nil return
// staples nothing.
func (e *Engine) StapleForHandshake() []byte {
	now := e.Clock.Now()
	e.mu.Lock()
	defer e.mu.Unlock()

	if e.cached == nil {
		if e.Policy.PauseFirstConnection {
			// Apache: the first client's handshake blocks on the
			// fetch.
			if err := e.refreshLocked(); err != nil {
				return nil
			}
			return e.cached.der
		}
		// Nginx: no staple for the first client; fetch in the
		// background for the next one.
		if e.rateLimitedLocked(now) {
			return nil
		}
		e.lastAttempt = now
		e.asyncWG.Add(1)
		go func() {
			defer e.asyncWG.Done()
			e.mu.Lock()
			defer e.mu.Unlock()
			e.refreshLocked()
		}()
		return nil
	}

	if e.refreshDueLocked(now) {
		stale := e.cached
		if err := e.refreshLocked(); err != nil {
			if e.Policy.RetainOnError {
				// Nginx: keep the old one until it expires —
				// but do respect nextUpdate.
				if e.Policy.RespectNextUpdate && stale.expired(now) {
					return nil
				}
				return stale.der
			}
			// Apache dropped the cache in refreshLocked.
			return nil
		}
		return e.cached.der
	}

	// Serve from cache. Apache serves even expired entries
	// (RespectNextUpdate == false); Nginx can serve an expired entry
	// only while rate-limited (validity < MinRefreshInterval).
	if e.cached.expired(now) && e.Policy.RespectNextUpdate && !e.rateLimitedLocked(now) {
		return nil
	}
	return e.cached.der
}

func (e *Engine) rateLimitedLocked(now time.Time) bool {
	return e.Policy.MinRefreshInterval > 0 && !e.lastAttempt.IsZero() && now.Sub(e.lastAttempt) < e.Policy.MinRefreshInterval
}

// TLSConfig returns a server TLS configuration that staples according to
// the policy on every handshake.
func (e *Engine) TLSConfig() (*tls.Config, error) {
	if e.Leaf == nil || e.Leaf.Issuer == nil {
		return nil, errors.New("webserver: engine needs a leaf with its issuer")
	}
	baseCert := tls.Certificate{
		Certificate: [][]byte{e.Leaf.Certificate.Raw, e.Leaf.Issuer.Certificate.Raw},
		PrivateKey:  e.Leaf.Key,
		Leaf:        e.Leaf.Certificate,
	}
	return &tls.Config{
		GetCertificate: func(chi *tls.ClientHelloInfo) (*tls.Certificate, error) {
			cert := baseCert
			cert.OCSPStaple = e.StapleForHandshake()
			return &cert, nil
		},
	}, nil
}
