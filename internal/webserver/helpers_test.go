package webserver

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/netmeasure/muststaple/internal/ocspserver"
	"github.com/netmeasure/muststaple/internal/pki"
	"github.com/netmeasure/muststaple/internal/responder"
)

// responderForLeaf builds a live responder for the fixture's leaf.
func responderForLeaf(t *testing.T, fx *engineFixture) *responder.Responder {
	t.Helper()
	db := responder.NewDB()
	db.AddIssued(fx.leaf.Certificate.SerialNumber, fx.leaf.Certificate.NotAfter)
	return responder.New("ocsp.http.test", fx.leaf.Issuer, db, fx.clk, responder.Profile{})
}

// httpFetcherFor serves resp over a real HTTP listener and returns a
// Fetcher pointing at it.
func httpFetcherFor(t *testing.T, leaf *pki.Leaf, resp *responder.Responder) (Fetcher, func()) {
	t.Helper()
	srv := httptest.NewServer(ocspserver.NewHandler(resp))
	// Point the fetcher at the live listener rather than the AIA URL.
	fetch, err := HTTPFetcherURL(&http.Client{}, leaf, srv.URL)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	return fetch, srv.Close
}
