package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/metrics"
	"github.com/netmeasure/muststaple/internal/scanner"
)

var round0 = time.Date(2018, 4, 25, 0, 0, 0, 0, time.UTC)

// obsAt builds a deterministic observation for round r, responder i,
// vantage j — distinct enough that stream comparisons catch reordering.
func obsAt(at time.Time, i, j int) scanner.Observation {
	o := fullObservation()
	o.At = at
	o.Responder = "ocsp" + string(rune('a'+i)) + ".example.net"
	o.Vantage = "vp-" + string(rune('0'+j))
	o.Serial = o.Responder + "-serial"
	o.Latency = time.Duration(i*10+j) * time.Millisecond
	return o
}

// appendRounds appends n rounds of perRound observations each, returning
// everything appended in stream order.
func appendRounds(t *testing.T, s *Store, n, perRound int) []scanner.Observation {
	t.Helper()
	var all []scanner.Observation
	for r := 0; r < n; r++ {
		at := round0.Add(time.Duration(r) * time.Hour)
		var obs []scanner.Observation
		for i := 0; i < perRound; i++ {
			obs = append(obs, obsAt(at, i, i%3))
		}
		if err := s.AppendRound(at, obs); err != nil {
			t.Fatalf("AppendRound(%v): %v", at, err)
		}
		all = append(all, obs...)
	}
	return all
}

func collectStream(t *testing.T, s *Store) []scanner.Observation {
	t.Helper()
	var out []scanner.Observation
	if err := s.Reader().Scan(func(o scanner.Observation) error {
		out = append(out, o)
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return out
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func countFiles(t *testing.T, dir, suffix string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) {
			n++
		}
	}
	return n
}

func TestOpenEmpty(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	st := s.Stats()
	if st.Records != 0 || st.Rounds != 0 || st.Segments != 1 || st.HasCheckpoint {
		t.Fatalf("empty store stats = %+v", st)
	}
	if got := collectStream(t, s); len(got) != 0 {
		t.Fatalf("empty store streamed %d observations", len(got))
	}
	if _, ok := s.LastCheckpoint(); ok {
		t.Fatal("empty store reported a checkpoint")
	}
}

func TestAppendReadReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := appendRounds(t, s, 3, 4)
	if got := collectStream(t, s); !reflect.DeepEqual(got, want) {
		t.Fatalf("live stream mismatch: got %d obs, want %d", len(got), len(want))
	}
	st := s.Stats()
	if st.Records != 12 || st.Rounds != 3 {
		t.Fatalf("stats = %+v, want 12 records over 3 rounds", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := collectStream(t, s2); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened stream mismatch: got %d obs, want %d", len(got), len(want))
	}
	if st := s2.Stats(); st.Records != 12 || st.Rounds != 3 {
		t.Fatalf("reopened stats = %+v", st)
	}
	// Appends continue seamlessly after a reopen.
	at := round0.Add(3 * time.Hour)
	extra := []scanner.Observation{obsAt(at, 0, 0)}
	if err := s2.AppendRound(at, extra); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	want = append(want, extra...)
	if got := collectStream(t, s2); !reflect.DeepEqual(got, want) {
		t.Fatal("stream mismatch after reopen-append")
	}
}

func TestAppendClosed(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.AppendRound(round0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed store = %v, want ErrClosed", err)
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 512, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := appendRounds(t, s, 6, 5)
	segs := s.Segments()
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	for i, seg := range segs[:len(segs)-1] {
		if seg.Bytes < 512 {
			t.Fatalf("sealed segment %d is under the rotation threshold (%d bytes)", i, seg.Bytes)
		}
	}
	if got := collectStream(t, s); !reflect.DeepEqual(got, want) {
		t.Fatal("multi-segment stream mismatch")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir, Options{SegmentSize: 512, NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := collectStream(t, s2); !reflect.DeepEqual(got, want) {
		t.Fatal("multi-segment stream mismatch after reopen")
	}
}

func TestIndexLookupAndKeys(t *testing.T) {
	s, err := Open(t.TempDir(), Options{SegmentSize: 512, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	appendRounds(t, s, 4, 3)

	keys := s.Keys()
	if len(keys) == 0 {
		t.Fatal("no index keys")
	}
	for i := 1; i < len(keys); i++ {
		a, b := keys[i-1], keys[i]
		if a.Round > b.Round || (a.Round == b.Round && a.Responder > b.Responder) ||
			(a.Round == b.Round && a.Responder == b.Responder && a.Vantage >= b.Vantage) {
			t.Fatalf("keys not strictly sorted at %d: %+v then %+v", i, a, b)
		}
	}

	at := round0.Add(2 * time.Hour)
	want := obsAt(at, 1, 1)
	got, err := s.Lookup(want.Responder, at.UnixNano(), want.Vantage)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], want) {
		t.Fatalf("Lookup = %+v, want exactly %+v", got, want)
	}
	if got, err := s.Lookup("nobody", at.UnixNano(), "vp-0"); err != nil || len(got) != 0 {
		t.Fatalf("Lookup(miss) = %v, %v", got, err)
	}
}

func TestMonotonicRounds(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	appendRounds(t, s, 2, 1)
	last := round0.Add(time.Hour)
	if err := s.AppendRound(last, nil); err == nil {
		t.Fatal("re-appending the last round succeeded")
	}
	if err := s.AppendRound(round0, nil); err == nil {
		t.Fatal("appending an earlier round succeeded")
	}
	// The monotonicity failure is not sticky — the round was never
	// started, so later valid rounds still append.
	if err := s.AppendRound(last.Add(time.Hour), nil); err != nil {
		t.Fatalf("valid append after monotonicity error: %v", err)
	}
}

func TestCheckpointRetention(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, CheckpointEvery: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	appendRounds(t, s, 5, 2)
	if n := countFiles(t, dir, ckptSuffix); n != 2 {
		t.Fatalf("%d checkpoint files on disk, want 2 (newest plus one predecessor)", n)
	}
	ck, ok := s.LastCheckpoint()
	if !ok {
		t.Fatal("no checkpoint after 5 rounds")
	}
	if want := round0.Add(4 * time.Hour).UnixNano(); ck.Round != want || ck.Rounds != 5 || ck.Scans != 10 {
		t.Fatalf("checkpoint = %+v, want round %d, 5 rounds, 10 scans", ck, want)
	}
}

func TestCheckpointEvery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, CheckpointEvery: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	appendRounds(t, s, 7, 1)
	ck, ok := s.LastCheckpoint()
	if !ok {
		t.Fatal("no checkpoint after 7 rounds")
	}
	// Rounds 3 and 6 checkpoint; round 7 is ahead of the checkpoint.
	if ck.Rounds != 6 {
		t.Fatalf("checkpoint covers %d rounds, want 6", ck.Rounds)
	}
}

func TestCheckpointPayload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, CheckpointEvery: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.SetCheckpointPayload(func() []byte { return []byte("engine snapshot") })
	appendRounds(t, s, 1, 1)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	ck, ok := s2.LastCheckpoint()
	if !ok || string(ck.Payload) != "engine snapshot" {
		t.Fatalf("checkpoint payload = %q, ok=%v", ck.Payload, ok)
	}
}

func TestEmptyRoundsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, CheckpointEvery: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendRounds(t, s, 1, 2)
	for r := 1; r <= 3; r++ {
		// Rounds where every target had expired: no observations, but
		// the round still counts toward resume accounting.
		if err := s.AppendRound(round0.Add(time.Duration(r)*time.Hour), nil); err != nil {
			t.Fatalf("empty round %d: %v", r, err)
		}
	}
	if st := s.Stats(); st.Rounds != 4 || st.Records != 2 {
		t.Fatalf("stats = %+v, want 4 rounds / 2 records", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, Options{NoSync: true, CheckpointEvery: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Rounds != 4 || st.Records != 2 {
		t.Fatalf("reopened stats = %+v, want 4 rounds / 2 records (checkpoint carries empty rounds)", st)
	}
	// The empty rounds advanced the high-water mark: re-appending the
	// last (empty) round must fail, the next round must succeed.
	if err := s2.AppendRound(round0.Add(3*time.Hour), nil); err == nil {
		t.Fatal("re-appending the last empty round succeeded after reopen")
	}
	if err := s2.AppendRound(round0.Add(4*time.Hour), nil); err != nil {
		t.Fatalf("append past restored high-water mark: %v", err)
	}
}

func TestTruncateAfter(t *testing.T) {
	dir := t.TempDir()
	// Small segments so truncation crosses file boundaries.
	s, err := Open(dir, Options{SegmentSize: 512, NoSync: true, CheckpointEvery: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	all := appendRounds(t, s, 6, 4)
	cut := round0.Add(2 * time.Hour) // keep rounds 0..2
	if err := s.TruncateAfter(cut.UnixNano()); err != nil {
		t.Fatalf("TruncateAfter: %v", err)
	}
	want := all[:3*4]
	if got := collectStream(t, s); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-truncate stream has %d obs, want %d", len(collectStream(t, s)), len(want))
	}
	st := s.Stats()
	if st.Records != 12 {
		t.Fatalf("post-truncate stats = %+v, want 12 records", st)
	}
	if st.HasCheckpoint && st.Checkpoint.Round > cut.UnixNano() {
		t.Fatalf("surviving checkpoint %+v is past the cut", st.Checkpoint)
	}
	// The store keeps working after a truncation.
	at := cut.Add(time.Hour)
	extra := []scanner.Observation{obsAt(at, 9, 1)}
	if err := s.AppendRound(at, extra); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	if got := collectStream(t, s); !reflect.DeepEqual(got, append(want, extra...)) {
		t.Fatal("stream mismatch after truncate-append")
	}
}

func TestRecoveryTornTailCorpus(t *testing.T) {
	// Build a single-segment store with no checkpoints, then replay every
	// possible torn-tail length and check recovery keeps exactly the
	// records that were fully written.
	src := t.TempDir()
	s, err := Open(src, Options{NoSync: true, CheckpointEvery: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	all := appendRounds(t, s, 3, 3)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segPath := filepath.Join(src, segmentName(0))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries: ends[i] is the offset just past record i.
	var ends []int64
	if _, _, err := scanSegment(segPath, 0, nil, func(payload []byte, off int64) error {
		ends = append(ends, off+recordHeaderSize+int64(len(payload)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ends) != len(all) {
		t.Fatalf("scanSegment saw %d records, appended %d", len(ends), len(all))
	}

	for cut := int64(segHeaderSize); cut < int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		intact := 0
		for _, end := range ends {
			if end <= cut {
				intact++
			}
		}
		s2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut=%d: Open after torn tail: %v", cut, err)
		}
		want := all[:intact]
		if intact == 0 {
			want = nil
		}
		got := collectStream(t, s2)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut=%d: recovered %d obs, want the first %d", cut, len(got), intact)
		}
		info, err := os.Stat(filepath.Join(dir, segmentName(0)))
		if err != nil {
			t.Fatal(err)
		}
		var wantSize int64 = segHeaderSize
		if intact > 0 {
			wantSize = ends[intact-1]
		}
		if info.Size() != wantSize {
			t.Fatalf("cut=%d: segment is %d bytes after recovery, want %d", cut, info.Size(), wantSize)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
	}
}

func TestRecoveryCorruptFinalRecord(t *testing.T) {
	src := t.TempDir()
	s, err := Open(src, Options{NoSync: true, CheckpointEvery: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	all := appendRounds(t, s, 2, 2)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	reg := metrics.NewRegistry()
	segPath := filepath.Join(src, segmentName(0))
	b, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF // flip a payload byte of the final record
	if err := os.WriteFile(segPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(src, Options{NoSync: true, Metrics: reg})
	if err != nil {
		t.Fatalf("Open after corrupt final record: %v", err)
	}
	defer s2.Close()
	if got := collectStream(t, s2); !reflect.DeepEqual(got, all[:len(all)-1]) {
		t.Fatalf("recovered %d obs, want %d (only the corrupted record lost)", len(got), len(all)-1)
	}
	if n := reg.Snapshot().Counters["store_recovered_truncated_bytes_total"]; n == 0 {
		t.Fatal("recovery did not count truncated bytes")
	}
}

func TestMidStreamCorruptionIsFatal(t *testing.T) {
	src := t.TempDir()
	s, err := Open(src, Options{SegmentSize: 512, NoSync: true, CheckpointEvery: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendRounds(t, s, 6, 5)
	if len(s.Segments()) < 2 {
		t.Fatal("test needs at least two segments")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Corrupt a record in the FIRST segment: that data is supposed to be
	// sealed and durable, so recovery must refuse rather than silently
	// dropping everything after it.
	segPath := filepath.Join(src, segmentName(0))
	b, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-10] ^= 0xFF
	if err := os.WriteFile(segPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(src, Options{SegmentSize: 512, NoSync: true}); err == nil {
		t.Fatal("Open succeeded with mid-stream corruption in a sealed segment")
	}
}

func TestCheckpointCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, CheckpointEvery: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendRounds(t, s, 3, 1)
	ck, _ := s.LastCheckpoint()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Corrupt the newest checkpoint; the predecessor must take over.
	newest := filepath.Join(dir, checkpointName(ck.Seq))
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{NoSync: true, CheckpointEvery: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got, ok := s2.LastCheckpoint()
	if !ok || got.Seq != ck.Seq-1 || got.Rounds != ck.Rounds-1 {
		t.Fatalf("fallback checkpoint = %+v ok=%v, want seq %d", got, ok, ck.Seq-1)
	}
	// Sequence numbers are never reused, even past a corrupt file.
	if err := s2.AppendRound(round0.Add(10*time.Hour), nil); err != nil {
		t.Fatalf("append: %v", err)
	}
	next, _ := s2.LastCheckpoint()
	if next.Seq <= ck.Seq {
		t.Fatalf("new checkpoint seq %d does not supersede the corrupt one (%d)", next.Seq, ck.Seq)
	}
}

func TestCrashFailpoint(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s, err := Open(dir, Options{CheckpointEvery: 1, CrashAfterRounds: 2, Metrics: reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	round1 := appendRounds(t, s, 1, 4)
	at := round0.Add(time.Hour)
	var obs []scanner.Observation
	for i := 0; i < 4; i++ {
		obs = append(obs, obsAt(at, i, 0))
	}
	if err := s.AppendRound(at, obs); !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("failpoint round returned %v, want ErrSimulatedCrash", err)
	}
	// The failure is sticky: the store refuses to extend a torn round.
	if err := s.AppendRound(at.Add(time.Hour), nil); !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("append after crash returned %v, want sticky ErrSimulatedCrash", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the torn record is truncated, the half round survives as
	// committed records, and the checkpoint still describes round 1.
	s2, err := Open(dir, Options{CheckpointEvery: 1})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s2.Close()
	ck, ok := s2.LastCheckpoint()
	if !ok {
		t.Fatal("no checkpoint after crash")
	}
	if ck.Round != round0.UnixNano() || ck.Rounds != 1 || ck.Scans != 4 {
		t.Fatalf("checkpoint after crash = %+v, want round 1 only", ck)
	}
	if st := s2.Stats(); st.Records != 4+2 {
		t.Fatalf("log holds %d records, want 4 committed + 2 from the half round", st.Records)
	}
	// The resume path: cut back to the checkpoint, leaving exactly the
	// fully persisted rounds.
	if err := s2.TruncateAfter(ck.Round); err != nil {
		t.Fatalf("TruncateAfter: %v", err)
	}
	if got := collectStream(t, s2); !reflect.DeepEqual(got, round1) {
		t.Fatalf("post-resume stream has %d obs, want round 1's %d", len(got), len(round1))
	}
	if st := s2.Stats(); st.Rounds != 1 || st.Records != 4 {
		t.Fatalf("post-resume stats = %+v", st)
	}
}

func TestReaderSnapshotIsolation(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	want := appendRounds(t, s, 2, 2)
	r := s.Reader()
	at := round0.Add(5 * time.Hour)
	if err := s.AppendRound(at, []scanner.Observation{obsAt(at, 0, 0)}); err != nil {
		t.Fatalf("append: %v", err)
	}
	var got []scanner.Observation
	if err := r.Scan(func(o scanner.Observation) error {
		got = append(got, o)
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot saw %d obs, want the %d present at snapshot time", len(got), len(want))
	}
}

func TestReaderErrStop(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	appendRounds(t, s, 2, 3)
	n := 0
	if err := s.Reader().Scan(func(scanner.Observation) error {
		n++
		if n == 2 {
			return ErrStop
		}
		return nil
	}); err != nil {
		t.Fatalf("Scan with ErrStop returned %v", err)
	}
	if n != 2 {
		t.Fatalf("scan visited %d records after ErrStop, want 2", n)
	}
}

func TestStoreMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s, err := Open(t.TempDir(), Options{SegmentSize: 512, NoSync: true, CheckpointEvery: 1, Metrics: reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	appendRounds(t, s, 4, 4)
	snap := reg.Snapshot()
	if got := snap.Counters["store_records_appended_total"]; got != 16 {
		t.Fatalf("records counter = %d, want 16", got)
	}
	if got := snap.Counters["store_rounds_appended_total"]; got != 4 {
		t.Fatalf("rounds counter = %d, want 4", got)
	}
	if got := snap.Counters["store_checkpoints_written_total"]; got != 4 {
		t.Fatalf("checkpoints counter = %d, want 4", got)
	}
	if got := snap.Gauges["store_segments"]; got < 2 {
		t.Fatalf("segments gauge = %d, want >= 2 after rotation", got)
	}
	if got := snap.Gauges["store_bytes"]; got == 0 {
		t.Fatal("bytes gauge is zero")
	}
	if snap.Histograms["store_flush_seconds"].Count == 0 {
		t.Fatal("flush latency histogram is empty")
	}
}
