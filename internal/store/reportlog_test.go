package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := CreateReportLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 500; i++ {
		p := []byte(fmt.Sprintf("report-%04d-%s", i, strings.Repeat("x", i%97)))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.Records() != 500 {
		t.Fatalf("Records = %d", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	if err := ScanReportLog(dir, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestReportLogRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := CreateReportLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	// ~64 KiB payloads force rotation at the 4 MiB threshold well before
	// the record count gets large.
	payload := bytes.Repeat([]byte{0xab}, 64<<10)
	const n = 100 // ~6.4 MiB total → at least two segments
	for i := 0; i < n; i++ {
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if _, ok := parseReportSegmentName(e.Name()); ok {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("expected rotation to produce >= 2 segments, got %d", segs)
	}
	count := 0
	if err := ScanReportLog(dir, func(p []byte) error {
		if !bytes.Equal(p, payload) {
			t.Fatal("payload corrupted across rotation")
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scanned %d records across segments, want %d", count, n)
	}
}

func TestReportLogRejectsBadAppends(t *testing.T) {
	l, err := CreateReportLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := l.Append(make([]byte, maxRecordSize+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

// TestReportLogCorruptionIsHardError: unlike the observation log, a
// damaged report record fails the scan — the log captures one run and
// corruption means rerun, not repair.
func TestReportLogCorruptionIsHardError(t *testing.T) {
	dir := t.TempDir()
	l, err := CreateReportLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, reportSegmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte: CRC mismatch.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ScanReportLog(dir, func([]byte) error { return nil }); err == nil {
		t.Fatal("CRC corruption not detected")
	}

	// Truncate mid-record: torn payload.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ScanReportLog(dir, func([]byte) error { return nil }); err == nil {
		t.Fatal("torn record not detected")
	}

	// Wrong magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ScanReportLog(dir, func([]byte) error { return nil }); err == nil {
		t.Fatal("bad magic not detected")
	}
}

// TestCreateReportLogClearsStaleSegments: a fresh log must not
// interleave with a previous run's arrival order.
func TestCreateReportLogClearsStaleSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := CreateReportLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("old-run")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := CreateReportLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("new-run")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := ScanReportLog(dir, func(p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "new-run" {
		t.Fatalf("stale segments leaked into the new run: %q", got)
	}
}

func TestParseReportSegmentName(t *testing.T) {
	cases := []struct {
		name string
		idx  int
		ok   bool
	}{
		{"rpt-000000.seg", 0, true},
		{"rpt-000042.seg", 42, true},
		{"rpt-.seg", 0, false},
		{"rpt-12ab.seg", 0, false},
		{"obs-000000.seg", 0, false},
		{"rpt-000000.tmp", 0, false},
	}
	for _, c := range cases {
		idx, ok := parseReportSegmentName(c.name)
		if ok != c.ok || (ok && idx != c.idx) {
			t.Errorf("parseReportSegmentName(%q) = %d,%v want %d,%v", c.name, idx, ok, c.idx, c.ok)
		}
	}
	if got := reportSegmentName(7); got != "rpt-000007.seg" {
		t.Errorf("reportSegmentName(7) = %q", got)
	}
}
