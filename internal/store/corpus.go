package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Corpus segments hold a spilled synthetic certificate corpus — the
// census generator's output, streamed to disk shard by shard so a
// paper-scale (hundreds of millions of certificates) world never has to
// live in memory. They sit alongside the observation log and reuse its
// framing discipline:
//
//	cor-NNNNNN.seg: 8-byte magic "MSCORSG1" | u32 LE codec version |
//	                u32 LE segment index, then records framed as
//	                u32 LE payload length | u32 LE CRC32-C | payload.
//
// One segment per generator shard, with the exact Must-Staple tier as
// the final segment, so segment order is stream order. Unlike the
// observation log, the corpus is derived data regenerated from a seed:
// a torn or corrupt record is a hard error (re-spill to repair), never a
// recoverable tail, and nothing is fsynced on the write path.
const (
	corpusMagic    = "MSCORSG1"
	corpusVersion  = 1
	corpusPrefix   = "cor-"
	corpusSuffix   = ".seg"
	corpusMetaName = "corpus.json"
)

// CorpusRecord is one spilled certificate. It mirrors census.CertInfo
// field for field; the store keeps its own copy so the on-disk format
// does not import the generator.
type CorpusRecord struct {
	CA           string
	Valid        bool
	SupportsOCSP bool
	MustStaple   bool
}

// CorpusMeta is the spill directory's commit record, written atomically
// after every segment so readers can tell a finished spill from a torn
// one — and tell whose corpus it is, so a directory spilled for one
// (seed, scale) is never silently reused for another.
type CorpusMeta struct {
	Version     int   `json:"version"`
	Seed        int64 `json:"seed"`
	ScaleFactor int   `json:"scale_factor"`
	// Shards counts the general-population segments; the Must-Staple
	// tier is the extra segment at index Shards.
	Shards  int   `json:"shards"`
	Records int64 `json:"records"`
}

// WriteCorpusMeta commits the meta file via temp-file + rename, the same
// atomicity discipline as checkpoints: readers see the old meta or the
// new one, never a torn write.
func WriteCorpusMeta(dir string, m CorpusMeta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: corpus meta: %w", err)
	}
	tmp := filepath.Join(dir, corpusMetaName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, corpusMetaName))
}

// ReadCorpusMeta reads the spill directory's meta file. ok is false when
// the directory has no committed meta (an empty or in-progress spill).
func ReadCorpusMeta(dir string) (m CorpusMeta, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, corpusMetaName))
	if errors.Is(err, os.ErrNotExist) {
		return CorpusMeta{}, false, nil
	}
	if err != nil {
		return CorpusMeta{}, false, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return CorpusMeta{}, false, fmt.Errorf("store: corpus meta: %w", err)
	}
	if m.Version != corpusVersion {
		return CorpusMeta{}, false, fmt.Errorf("store: corpus meta version %d, want %d", m.Version, corpusVersion)
	}
	return m, true, nil
}

func corpusSegmentName(index int) string {
	return fmt.Sprintf("%s%06d%s", corpusPrefix, index, corpusSuffix)
}

func parseCorpusSegmentName(name string) (int, bool) {
	if !strings.HasPrefix(name, corpusPrefix) || !strings.HasSuffix(name, corpusSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, corpusPrefix), corpusSuffix)
	if digits == "" {
		return 0, false
	}
	n := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// CorpusWriter appends records to one corpus segment.
type CorpusWriter struct {
	f       *os.File
	bw      *bufio.Writer
	scratch []byte
	records int64
}

// CreateCorpusSegment creates (or truncates — spills are idempotent
// regenerations, so overwriting a stale segment is the repair path)
// segment index under dir and returns a writer positioned for appends.
func CreateCorpusSegment(dir string, index int) (*CorpusWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, corpusSegmentName(index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &CorpusWriter{f: f, bw: bufio.NewWriterSize(f, 64<<10)}
	h := make([]byte, segHeaderSize)
	copy(h, corpusMagic)
	binary.LittleEndian.PutUint32(h[8:], corpusVersion)
	binary.LittleEndian.PutUint32(h[12:], uint32(index))
	if _, err := w.bw.Write(h); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return w, nil
}

// Append writes one framed record.
func (w *CorpusWriter) Append(rec CorpusRecord) error {
	payload := appendCorpusRecord(w.scratch[:0], rec)
	w.scratch = payload
	if len(payload) > maxRecordSize {
		return fmt.Errorf("store: corpus record of %d bytes exceeds limit", len(payload))
	}
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.records++
	return nil
}

// Records returns how many records have been appended.
func (w *CorpusWriter) Records() int64 { return w.records }

// Close flushes and closes the segment. No fsync: the corpus is derived
// data, and the meta file is the commit point.
func (w *CorpusWriter) Close() error {
	ferr := w.bw.Flush()
	return errors.Join(ferr, w.f.Close())
}

// ScanCorpusSegment streams every record of one segment through fn.
// Corruption anywhere — bad header, bad CRC, torn tail — is a hard
// error: corpus segments are written in full and committed by the meta
// file, so a damaged one means the spill must be regenerated.
func ScanCorpusSegment(path string, index int, fn func(CorpusRecord) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() //lint:allow errcheck-hot read-only handle, nothing to flush

	br := bufio.NewReaderSize(f, 64<<10)
	h := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(br, h); err != nil {
		return fmt.Errorf("store: corpus segment header: %w", err)
	}
	if string(h[:8]) != corpusMagic {
		return fmt.Errorf("store: bad corpus segment magic %q", h[:8])
	}
	if v := binary.LittleEndian.Uint32(h[8:]); v != corpusVersion {
		return fmt.Errorf("store: corpus segment version %d, want %d", v, corpusVersion)
	}
	if idx := int(binary.LittleEndian.Uint32(h[12:])); idx != index {
		return fmt.Errorf("store: corpus segment header index %d does not match name index %d", idx, index)
	}

	hdr := make([]byte, recordHeaderSize)
	var buf []byte
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("store: %s: torn record header: %w", path, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if length == 0 || length > maxRecordSize {
			return fmt.Errorf("store: %s: corrupt record length %d", path, length)
		}
		if int(length) > cap(buf) {
			buf = make([]byte, length)
		}
		payload := buf[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("store: %s: torn record payload: %w", path, err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return fmt.Errorf("store: %s: record CRC mismatch", path)
		}
		rec, err := decodeCorpusRecord(payload)
		if err != nil {
			return fmt.Errorf("store: %s: %w", path, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// ScanCorpus streams every record of a committed spill directory through
// fn, segments in index order — which is the generator's stream order.
func ScanCorpus(dir string, fn func(CorpusRecord) error) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	type seg struct {
		index int
		path  string
	}
	var segs []seg
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		idx, ok := parseCorpusSegmentName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, seg{index: idx, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	for _, s := range segs {
		if err := ScanCorpusSegment(s.path, s.index, fn); err != nil {
			return err
		}
	}
	return nil
}

// Corpus record payload: uvarint CA length | CA bytes | flag byte
// (bit 0 Valid, bit 1 SupportsOCSP, bit 2 MustStaple).
func appendCorpusRecord(b []byte, rec CorpusRecord) []byte {
	b = appendString(b, rec.CA)
	var flags byte
	if rec.Valid {
		flags |= 1
	}
	if rec.SupportsOCSP {
		flags |= 2
	}
	if rec.MustStaple {
		flags |= 4
	}
	return append(b, flags)
}

func decodeCorpusRecord(b []byte) (CorpusRecord, error) {
	d := decoder{b: b}
	var rec CorpusRecord
	rec.CA = d.string()
	flags := d.rawByte()
	if d.err != nil {
		return CorpusRecord{}, d.err
	}
	if d.off != len(d.b) {
		return CorpusRecord{}, fmt.Errorf("store: %d trailing bytes after corpus record", len(d.b)-d.off)
	}
	if flags > 7 {
		return CorpusRecord{}, fmt.Errorf("store: bad corpus record flags %#x", flags)
	}
	rec.Valid = flags&1 != 0
	rec.SupportsOCSP = flags&2 != 0
	rec.MustStaple = flags&4 != 0
	return rec, nil
}
