package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Segment files are named seg-NNNNNN.log and begin with a fixed header:
//
//	8-byte magic "MSOBSLG1" | u32 LE codec version | u32 LE segment index
//
// Records follow back to back (see codec.go for the framing). Indexes are
// monotonically increasing but may have gaps after compaction merges
// neighbours; readers order segments by index, never by file order.
const (
	segMagic      = "MSOBSLG1"
	segHeaderSize = 16
	segPrefix     = "seg-"
	segSuffix     = ".log"
)

// DefaultSegmentSize is the rotation threshold when Options.SegmentSize
// is zero. Small enough that compaction and truncation touch little data,
// large enough that a paper-scale campaign stays in tens of files.
const DefaultSegmentSize = 4 << 20

// segment is the in-memory description of one on-disk segment file.
type segment struct {
	index   int
	path    string
	size    int64 // committed bytes, header included
	records int
	firstAt int64 // round of the first/last record (UnixNano);
	lastAt  int64 // meaningful only when records > 0
}

func segmentName(index int) string {
	return fmt.Sprintf("%s%06d%s", segPrefix, index, segSuffix)
}

// parseSegmentName extracts the index from a segment file name.
func parseSegmentName(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if digits == "" {
		return 0, false
	}
	n := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// listSegments returns the directory's segment descriptions sorted by
// index, sizes still unvalidated (load scans each file afterwards).
func listSegments(dir string) ([]*segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []*segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		idx, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, &segment{index: idx, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

func encodeSegmentHeader(index int) []byte {
	h := make([]byte, segHeaderSize)
	copy(h, segMagic)
	binary.LittleEndian.PutUint32(h[8:], codecVersion)
	binary.LittleEndian.PutUint32(h[12:], uint32(index))
	return h
}

// createSegment writes a new empty segment file with its header and
// returns the open handle positioned for appends.
func createSegment(dir string, index int) (*segment, *os.File, error) {
	path := filepath.Join(dir, segmentName(index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if _, err := f.Write(encodeSegmentHeader(index)); err != nil {
		return nil, nil, errors.Join(err, f.Close())
	}
	return &segment{index: index, path: path, size: segHeaderSize}, f, nil
}

// checkSegmentHeader validates the magic, version, and index of an open
// segment file read from r.
func checkSegmentHeader(r io.Reader, wantIndex int) error {
	h := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(r, h); err != nil {
		return fmt.Errorf("store: segment header: %w", err)
	}
	if string(h[:8]) != segMagic {
		return fmt.Errorf("store: bad segment magic %q", h[:8])
	}
	if v := binary.LittleEndian.Uint32(h[8:]); v != codecVersion {
		return fmt.Errorf("store: segment codec version %d, want %d", v, codecVersion)
	}
	if idx := int(binary.LittleEndian.Uint32(h[12:])); idx != wantIndex {
		return fmt.Errorf("store: segment header index %d does not match name index %d", idx, wantIndex)
	}
	return nil
}

// scanSegment reads every intact record in the segment file, calling fn
// with each payload and its file offset, and returns the committed size:
// the offset just past the last intact record. A torn or corrupt tail —
// short header, impossible length, short payload, or CRC mismatch — ends
// the scan at the last good record; corruption is a recoverable state,
// not an error. Errors are real I/O failures only.
func scanSegment(path string, index int, buf []byte, fn func(payload []byte, off int64) error) (committed int64, _ []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, buf, err
	}
	defer f.Close() //lint:allow errcheck-hot read-only handle, nothing to flush

	br := bufio.NewReaderSize(f, 64<<10)
	if err := checkSegmentHeader(br, index); err != nil {
		return 0, buf, err
	}
	committed = segHeaderSize

	hdr := make([]byte, recordHeaderSize)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			return committed, buf, nil // clean EOF or torn header: stop at last good record
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if length == 0 || length > maxRecordSize {
			return committed, buf, nil // corrupt length field
		}
		if int(length) > cap(buf) {
			buf = make([]byte, length)
		}
		payload := buf[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return committed, buf, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return committed, buf, nil // corrupt payload
		}
		off := committed
		committed += recordHeaderSize + int64(length)
		if fn != nil {
			if err := fn(payload, off); err != nil {
				return committed, buf, err
			}
		}
	}
}
