package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint files are named ckpt-NNNNNNNNNNNNNNNN.ckpt (seq, zero-padded
// decimal) and written atomically (temp file + rename), so a checkpoint
// either exists whole or not at all. Layout:
//
//	8-byte magic "MSOBSCK1" | u32 LE version | u64 LE seq |
//	i64 LE round | i64 LE rounds | i64 LE scans |
//	u32 LE payload length | payload | u32 LE CRC32-C of everything above
const (
	ckptMagic   = "MSOBSCK1"
	ckptVersion = 1
	ckptPrefix  = "ckpt-"
	ckptSuffix  = ".ckpt"
	// maxCheckpointPayload bounds the opaque snapshot carried inside a
	// checkpoint; anything larger is a corrupt length field.
	maxCheckpointPayload = 8 << 20
)

// Checkpoint records the store's durable high-water mark after a fully
// persisted round. Resume truncates the log back to Round and replays it;
// Payload is an opaque informational snapshot (see SetCheckpointPayload).
type Checkpoint struct {
	// Seq orders checkpoints; higher supersedes lower.
	Seq uint64
	// Round is the last fully persisted round (UnixNano).
	Round int64
	// Rounds and Scans count the persisted rounds and records up to and
	// including Round.
	Rounds int64
	Scans  int64
	// Payload is an opaque engine snapshot; may be empty.
	Payload []byte
}

func checkpointName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", ckptPrefix, seq, ckptSuffix)
}

func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

func encodeCheckpoint(ck Checkpoint) []byte {
	b := make([]byte, 0, 48+len(ck.Payload))
	b = append(b, ckptMagic...)
	b = binary.LittleEndian.AppendUint32(b, ckptVersion)
	b = binary.LittleEndian.AppendUint64(b, ck.Seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(ck.Round))
	b = binary.LittleEndian.AppendUint64(b, uint64(ck.Rounds))
	b = binary.LittleEndian.AppendUint64(b, uint64(ck.Scans))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ck.Payload)))
	b = append(b, ck.Payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

func decodeCheckpoint(b []byte) (Checkpoint, error) {
	var ck Checkpoint
	if len(b) < 52 {
		return ck, fmt.Errorf("store: checkpoint too short (%d bytes)", len(b))
	}
	if string(b[:8]) != ckptMagic {
		return ck, fmt.Errorf("store: bad checkpoint magic %q", b[:8])
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != ckptVersion {
		return ck, fmt.Errorf("store: checkpoint version %d, want %d", v, ckptVersion)
	}
	ck.Seq = binary.LittleEndian.Uint64(b[12:])
	ck.Round = int64(binary.LittleEndian.Uint64(b[20:]))
	ck.Rounds = int64(binary.LittleEndian.Uint64(b[28:]))
	ck.Scans = int64(binary.LittleEndian.Uint64(b[36:]))
	n := binary.LittleEndian.Uint32(b[44:])
	if n > maxCheckpointPayload || int(n) != len(b)-52 {
		return ck, fmt.Errorf("store: checkpoint payload length %d does not match file size %d", n, len(b))
	}
	body := b[:len(b)-4]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return ck, fmt.Errorf("store: checkpoint failed its checksum")
	}
	if n > 0 {
		ck.Payload = append([]byte(nil), b[48:48+int(n)]...)
	}
	return ck, nil
}

// writeCheckpoint atomically writes ck into dir.
func writeCheckpoint(dir string, ck Checkpoint, noSync bool) error {
	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()           //lint:allow errcheck-hot original error already being returned
		os.Remove(tmp.Name()) //lint:allow errcheck-hot best-effort temp cleanup on an error path
		return err
	}
	if _, err := tmp.Write(encodeCheckpoint(ck)); err != nil {
		return cleanup(err)
	}
	if !noSync {
		if err := tmp.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, checkpointName(ck.Seq))); err != nil {
		return cleanup(err)
	}
	if noSync {
		return nil
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// listCheckpoints returns the checkpoint sequence numbers present in dir,
// ascending.
func listCheckpoints(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseCheckpointName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// loadLatestCheckpoint returns the newest checkpoint that decodes intact
// (nil when none exists) plus the highest sequence number present on
// disk, intact or not, so new checkpoints never reuse a sequence.
func loadLatestCheckpoint(dir string) (*Checkpoint, uint64, error) {
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return nil, 0, err
	}
	var maxSeq uint64
	if len(seqs) > 0 {
		maxSeq = seqs[len(seqs)-1]
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		b, err := os.ReadFile(filepath.Join(dir, checkpointName(seqs[i])))
		if err != nil {
			return nil, 0, err
		}
		ck, err := decodeCheckpoint(b)
		if err != nil {
			// A corrupt checkpoint is superseded data, not fatal:
			// fall back to the previous one.
			continue
		}
		return &ck, maxSeq, nil
	}
	return nil, maxSeq, nil
}

// pruneCheckpoints deletes superseded checkpoints, keeping the newest
// `keep` files at or below seq.
func pruneCheckpoints(dir string, seq uint64, keep int) error {
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	kept := 0
	for i := len(seqs) - 1; i >= 0; i-- {
		if seqs[i] <= seq {
			kept++
			if kept <= keep {
				continue
			}
		} else if kept == 0 {
			// Never delete a checkpoint newer than the one just
			// written; it should not exist, but losing data on a
			// sequencing bug would be worse than keeping a file.
			continue
		}
		if err := os.Remove(filepath.Join(dir, checkpointName(seqs[i]))); err != nil {
			return err
		}
	}
	return nil
}

// removeCheckpointsAfter deletes every checkpoint whose round high-water
// mark lies past round, plus any that no longer decode — the truncation
// path's way of keeping only checkpoints that still describe real data.
func removeCheckpointsAfter(dir string, round int64) error {
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		path := filepath.Join(dir, checkpointName(seq))
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		ck, err := decodeCheckpoint(b)
		if err == nil && ck.Round <= round {
			continue
		}
		if err := os.Remove(path); err != nil {
			return err
		}
	}
	return nil
}
