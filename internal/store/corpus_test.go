package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func corpusFixture() []CorpusRecord {
	return []CorpusRecord{
		{CA: "Let's Encrypt", Valid: true, SupportsOCSP: true},
		{CA: "", Valid: false, SupportsOCSP: false},
		{CA: "DFN", Valid: true, SupportsOCSP: true, MustStaple: true},
		{CA: "Comodo", Valid: false, SupportsOCSP: true},
		{CA: "UserTrust", Valid: true},
	}
}

func writeCorpusSegment(t *testing.T, dir string, index int, recs []CorpusRecord) {
	t.Helper()
	w, err := CreateCorpusSegment(dir, index)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Records(); got != int64(len(recs)) {
		t.Fatalf("Records() = %d, want %d", got, len(recs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := corpusFixture()
	writeCorpusSegment(t, dir, 3, want)

	var got []CorpusRecord
	err := ScanCorpusSegment(filepath.Join(dir, corpusSegmentName(3)), 3, func(rec CorpusRecord) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestScanCorpusOrdersSegmentsByIndex(t *testing.T) {
	dir := t.TempDir()
	// Write out of order; the scan must come back in index order.
	writeCorpusSegment(t, dir, 2, []CorpusRecord{{CA: "third"}})
	writeCorpusSegment(t, dir, 0, []CorpusRecord{{CA: "first"}})
	writeCorpusSegment(t, dir, 1, []CorpusRecord{{CA: "second"}})

	var cas []string
	err := ScanCorpus(dir, func(rec CorpusRecord) error {
		cas = append(cas, rec.CA)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second", "third"}
	if !reflect.DeepEqual(cas, want) {
		t.Fatalf("scan order = %v, want %v", cas, want)
	}
}

func TestCorpusSegmentCorruptionIsHardError(t *testing.T) {
	dir := t.TempDir()
	writeCorpusSegment(t, dir, 0, corpusFixture())
	path := filepath.Join(dir, corpusSegmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte: unlike the observation log's recoverable torn
	// tail, a corrupt corpus record must fail the scan.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ScanCorpusSegment(path, 0, func(CorpusRecord) error { return nil }); err == nil {
		t.Fatal("scan of corrupt segment succeeded, want error")
	}

	// A truncated tail is equally fatal.
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ScanCorpusSegment(path, 0, func(CorpusRecord) error { return nil }); err == nil {
		t.Fatal("scan of truncated segment succeeded, want error")
	}
}

func TestCorpusMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadCorpusMeta(dir); err != nil || ok {
		t.Fatalf("ReadCorpusMeta on empty dir = ok=%v err=%v, want absent", ok, err)
	}
	want := CorpusMeta{Version: 1, Seed: 42, ScaleFactor: 1000, Shards: 8, Records: 489_580}
	if err := WriteCorpusMeta(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadCorpusMeta(dir)
	if err != nil || !ok {
		t.Fatalf("ReadCorpusMeta = ok=%v err=%v, want present", ok, err)
	}
	if got != want {
		t.Fatalf("meta round trip = %+v, want %+v", got, want)
	}
}
