package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Report-log segments hold the Expect-Staple collector's accepted
// violation reports, append-only and in arrival order. The store treats
// each report as an opaque payload (the wire codec lives in
// internal/expectstaple; the store must not import its producers) and
// reuses the observation log's framing discipline:
//
//	rpt-NNNNNN.seg: 8-byte magic "MSRPTSG1" | u32 LE codec version |
//	                u32 LE segment index, then records framed as
//	                u32 LE payload length | u32 LE CRC32-C | payload.
//
// Segments rotate at a size threshold so a long ingest run never grows
// one unbounded file, and segment order is arrival order. Like the
// corpus — and unlike the observation log — a damaged record is a hard
// error: the log is written by one collector in one run, so corruption
// means the run must be repeated, not repaired around.
const (
	reportLogMagic   = "MSRPTSG1"
	reportLogVersion = 1
	reportLogPrefix  = "rpt-"
	reportLogSuffix  = ".seg"

	// reportSegmentMaxBytes triggers rotation; ~4 MiB keeps segments
	// mmap-friendly and bounds the cost of a torn tail to one segment.
	reportSegmentMaxBytes = 4 << 20
)

func reportSegmentName(index int) string {
	return fmt.Sprintf("%s%06d%s", reportLogPrefix, index, reportLogSuffix)
}

func parseReportSegmentName(name string) (int, bool) {
	if !strings.HasPrefix(name, reportLogPrefix) || !strings.HasSuffix(name, reportLogSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, reportLogPrefix), reportLogSuffix)
	if digits == "" {
		return 0, false
	}
	n := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// ReportLog appends opaque report payloads to a rotating segment
// sequence. It is not safe for concurrent use; the collector serializes
// appends (arrival order is the log's meaning).
type ReportLog struct {
	dir     string
	f       *os.File
	bw      *bufio.Writer
	index   int
	written int64
	records int64
}

// CreateReportLog starts a fresh log under dir, removing any previous
// run's segments (a report log captures one ingest run; stale segments
// from an earlier run must not interleave with the new arrival order).
func CreateReportLog(dir string) (*ReportLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if _, ok := parseReportSegmentName(e.Name()); ok {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, err
			}
		}
	}
	l := &ReportLog{dir: dir}
	if err := l.openSegment(0); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *ReportLog) openSegment(index int) error {
	path := filepath.Join(l.dir, reportSegmentName(index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	h := make([]byte, segHeaderSize)
	copy(h, reportLogMagic)
	binary.LittleEndian.PutUint32(h[8:], reportLogVersion)
	binary.LittleEndian.PutUint32(h[12:], uint32(index))
	if _, err := bw.Write(h); err != nil {
		return errors.Join(err, f.Close())
	}
	l.f, l.bw, l.index, l.written = f, bw, index, int64(segHeaderSize)
	return nil
}

// Append frames and writes one payload, rotating the segment when the
// size threshold is crossed. The payload is copied into the write buffer
// before Append returns, so callers may reuse it (the collector's pooled
// read buffer depends on this).
func (l *ReportLog) Append(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("store: empty report payload")
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("store: report payload of %d bytes exceeds limit", len(payload))
	}
	if l.written >= reportSegmentMaxBytes {
		if err := l.closeSegment(); err != nil {
			return err
		}
		if err := l.openSegment(l.index + 1); err != nil {
			return err
		}
	}
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := l.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.bw.Write(payload); err != nil {
		return err
	}
	l.written += int64(recordHeaderSize + len(payload))
	l.records++
	return nil
}

// Records returns how many payloads have been appended.
func (l *ReportLog) Records() int64 { return l.records }

func (l *ReportLog) closeSegment() error {
	ferr := l.bw.Flush()
	return errors.Join(ferr, l.f.Close())
}

// Close flushes and closes the current segment.
func (l *ReportLog) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.closeSegment()
	l.f, l.bw = nil, nil
	return err
}

// ScanReportLog streams every payload of a report-log directory through
// fn, segments in index order and records in append order — the
// collector's arrival order. The payload slice is reused between calls;
// fn must not retain it.
func ScanReportLog(dir string, fn func(payload []byte) error) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	type seg struct {
		index int
		path  string
	}
	var segs []seg
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		idx, ok := parseReportSegmentName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, seg{index: idx, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	var buf []byte
	for _, s := range segs {
		if err := scanReportSegment(s.path, s.index, &buf, fn); err != nil {
			return err
		}
	}
	return nil
}

func scanReportSegment(path string, index int, buf *[]byte, fn func([]byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() //lint:allow errcheck-hot read-only handle, nothing to flush

	br := bufio.NewReaderSize(f, 64<<10)
	h := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(br, h); err != nil {
		return fmt.Errorf("store: report segment header: %w", err)
	}
	if string(h[:8]) != reportLogMagic {
		return fmt.Errorf("store: bad report segment magic %q", h[:8])
	}
	if v := binary.LittleEndian.Uint32(h[8:]); v != reportLogVersion {
		return fmt.Errorf("store: report segment version %d, want %d", v, reportLogVersion)
	}
	if idx := int(binary.LittleEndian.Uint32(h[12:])); idx != index {
		return fmt.Errorf("store: report segment header index %d does not match name index %d", idx, index)
	}

	hdr := make([]byte, recordHeaderSize)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("store: %s: torn record header: %w", path, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if length == 0 || length > maxRecordSize {
			return fmt.Errorf("store: %s: corrupt record length %d", path, length)
		}
		if int(length) > cap(*buf) {
			*buf = make([]byte, length)
		}
		payload := (*buf)[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("store: %s: torn record payload: %w", path, err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return fmt.Errorf("store: %s: record CRC mismatch", path)
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}
