package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/netmeasure/muststaple/internal/scanner"
)

// ErrStop may be returned by a Scan callback to end the scan early;
// Scan then returns nil.
var ErrStop = errors.New("store: stop scan")

// Reader streams a point-in-time snapshot of the store: the segments and
// byte limits are captured when the Reader is created, so records
// appended afterwards are not visited. Scans read segment files in order
// with a reused buffer — memory stays bounded no matter how large the
// store is.
type Reader struct {
	segs []readerSeg
}

type readerSeg struct {
	path  string
	index int
	limit int64 // committed bytes at snapshot time
}

// Reader snapshots the current flushed state for streaming reads. It
// implements the report package's ObservationSource, and its Scan method
// satisfies scanner.ReplaySource.
func (s *Store) Reader() *Reader {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &Reader{segs: make([]readerSeg, 0, len(s.segs))}
	for i, seg := range s.segs {
		limit := seg.size
		if i == len(s.segs)-1 {
			// The active segment may hold buffered, not-yet-flushed
			// bytes; expose only what is readable on disk.
			limit = s.flushed
		}
		r.segs = append(r.segs, readerSeg{path: seg.path, index: seg.index, limit: limit})
	}
	return r
}

// Scan streams every observation in storage order (segment order, append
// order within a segment) to fn, decoding one record at a time. A fn
// error stops the scan and is returned, except ErrStop which stops it
// successfully. Unlike recovery, a scan does not tolerate torn records:
// everything inside the snapshot limits was durably committed, so a
// framing or checksum failure here is data corruption and an error.
func (r *Reader) Scan(fn func(scanner.Observation) error) error {
	// Scan-level scratch, shared by every segment: one payload buffer,
	// one record-header buffer, and one string intern table, so steady
	// state decoding allocates only for values the scan has never seen.
	scratch := scanScratch{
		hdr:    make([]byte, recordHeaderSize),
		intern: newInternTable(),
	}
	for _, seg := range r.segs {
		if err := scanReaderSegment(seg, &scratch, fn); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
	return nil
}

type scanScratch struct {
	buf    []byte
	hdr    []byte
	intern *internTable
}

func scanReaderSegment(seg readerSeg, scratch *scanScratch, fn func(scanner.Observation) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return err
	}
	defer f.Close() //lint:allow errcheck-hot read-only handle, nothing to flush

	lr := bufio.NewReaderSize(io.LimitReader(f, seg.limit), 64<<10)
	if err := checkSegmentHeader(lr, seg.index); err != nil {
		return err
	}
	off := int64(segHeaderSize)
	hdr := scratch.hdr
	for off < seg.limit {
		if _, err := io.ReadFull(lr, hdr); err != nil {
			return fmt.Errorf("store: %s offset %d: truncated record header inside committed range: %w", seg.path, off, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if length == 0 || length > maxRecordSize {
			return fmt.Errorf("store: %s offset %d: impossible record length %d", seg.path, off, length)
		}
		if int(length) > cap(scratch.buf) {
			scratch.buf = make([]byte, length)
		}
		payload := scratch.buf[:length]
		if _, err := io.ReadFull(lr, payload); err != nil {
			return fmt.Errorf("store: %s offset %d: truncated record inside committed range: %w", seg.path, off, err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return fmt.Errorf("store: %s offset %d: record failed its checksum", seg.path, off)
		}
		o, err := decodeObservationInterned(payload, scratch.intern)
		if err != nil {
			return fmt.Errorf("store: %s offset %d: %w", seg.path, off, err)
		}
		off += recordHeaderSize + int64(length)
		if err := fn(o); err != nil {
			return err
		}
	}
	return nil
}
