package store

import (
	"reflect"
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/scanner"
)

// buildFragmented writes a store with a small rotation threshold so many
// tiny sealed segments pile up, then closes it. Reopening with the normal
// (larger) threshold leaves those segments under-full — the shape Compact
// exists to clean up.
func buildFragmented(t *testing.T) (dir string, want []Key) {
	t.Helper()
	dir = t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 512, NoSync: true, CheckpointEvery: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendRounds(t, s, 8, 4)
	want = s.Keys()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir, want
}

func TestCompactMergesAndPreservesStream(t *testing.T) {
	dir, wantKeys := buildFragmented(t)
	s, err := Open(dir, Options{SegmentSize: 16 << 10, NoSync: true, CheckpointEvery: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	before := collectStream(t, s)
	segsBefore := len(s.Segments())
	if segsBefore < 4 {
		t.Fatalf("fixture produced only %d segments; compaction needs several", segsBefore)
	}
	ckptsBefore := countFiles(t, dir, ckptSuffix)
	if ckptsBefore < 2 {
		t.Fatalf("fixture holds %d checkpoints, want at least 2", ckptsBefore)
	}

	st, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.SegmentsMerged < 2 {
		t.Fatalf("Compact merged %d segments, want >= 2", st.SegmentsMerged)
	}
	if st.CheckpointsDropped != ckptsBefore-1 {
		t.Fatalf("Compact dropped %d checkpoints, want %d", st.CheckpointsDropped, ckptsBefore-1)
	}
	if got := len(s.Segments()); got >= segsBefore {
		t.Fatalf("still %d segments after compaction (was %d)", got, segsBefore)
	}
	if n := countFiles(t, dir, ckptSuffix); n != 1 {
		t.Fatalf("%d checkpoint files after compaction, want 1", n)
	}

	// The observation stream and index are exactly what they were.
	if after := collectStream(t, s); !reflect.DeepEqual(after, before) {
		t.Fatalf("stream changed: %d obs before, %d after", len(before), len(after))
	}
	if got := s.Keys(); !reflect.DeepEqual(got, wantKeys) {
		t.Fatalf("index changed: %d keys before, %d after", len(wantKeys), len(got))
	}
	at := round0.Add(2 * time.Hour)
	probe := obsAt(at, 1, 1)
	got, err := s.Lookup(probe.Responder, at.UnixNano(), probe.Vantage)
	if err != nil || len(got) != 1 || !reflect.DeepEqual(got[0], probe) {
		t.Fatalf("Lookup after compaction = %+v, %v", got, err)
	}

	// The store keeps appending and a reopen sees the merged layout.
	extra := round0.Add(100 * time.Hour)
	if err := s.AppendRound(extra, []scanner.Observation{obsAt(extra, 0, 0)}); err != nil {
		t.Fatalf("append after compaction: %v", err)
	}
}

func TestCompactSurvivesReopen(t *testing.T) {
	dir, _ := buildFragmented(t)
	s, err := Open(dir, Options{SegmentSize: 16 << 10, NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	before := collectStream(t, s)
	if _, err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir, Options{SegmentSize: 16 << 10, NoSync: true})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer s2.Close()
	if got := collectStream(t, s2); !reflect.DeepEqual(got, before) {
		t.Fatalf("stream changed across compaction+reopen: %d vs %d obs", len(got), len(before))
	}
}

func TestCompactNoopWhenAlreadyCompact(t *testing.T) {
	s, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	appendRounds(t, s, 3, 2)
	before := collectStream(t, s)
	st, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.SegmentsMerged != 0 {
		t.Fatalf("Compact on a single-segment store merged %d segments", st.SegmentsMerged)
	}
	if got := collectStream(t, s); !reflect.DeepEqual(got, before) {
		t.Fatal("noop compaction changed the stream")
	}
}
