// Package store is the durable observation store behind `-store` /
// `-resume`: a dependency-free embedded segmented append-only log holding
// one record per scanner.Observation, with CRC32-C checksummed record
// framing, an in-memory index keyed by (responder, round, vantage)
// rebuilt on open, crash-safe recovery that truncates a torn tail record,
// and periodic campaign checkpoints that let an interrupted campaign
// resume exactly where it stopped. See DESIGN.md §11 for the on-disk
// format and the recovery rules.
//
// Concurrency: a Store has a single writer (the campaign engine's
// dedicated store goroutine calls AppendRound) and any number of Readers;
// all exported methods are safe for concurrent use.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/netmeasure/muststaple/internal/metrics"
	"github.com/netmeasure/muststaple/internal/scanner"
)

// ErrSimulatedCrash is returned by AppendRound when the CrashAfterRounds
// failpoint fires: the store has durably written only part of the round
// (plus a deliberately torn trailing record) and refuses further writes,
// exactly as if the process had died mid-append. cmd/repro exits with a
// distinct status on this error so the CI crash-recovery drill can assert
// the interruption happened.
var ErrSimulatedCrash = errors.New("store: simulated crash failpoint reached")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// flushLatencyBounds are the store_flush_seconds histogram buckets.
var flushLatencyBounds = []float64{0.0005, 0.002, 0.01, 0.05, 0.25, 1}

// Options configures Open. The zero value is a usable default.
type Options struct {
	// SegmentSize is the rotation threshold in bytes; a segment that
	// reaches it is sealed and a new one started. 0 means
	// DefaultSegmentSize.
	SegmentSize int64
	// CheckpointEvery is how many appended rounds lie between
	// checkpoints. 0 means 1: every completed round is checkpointed,
	// so a crash loses at most the round in flight.
	CheckpointEvery int
	// NoSync disables fsync entirely (benchmarks; crash safety is then
	// up to the OS).
	NoSync bool
	// Metrics receives the store's counters (segments, bytes, records,
	// flush latency). Nil means a private registry.
	Metrics *metrics.Registry
	// CrashAfterRounds is a failpoint for crash-recovery drills: when
	// N > 0, the N-th AppendRound durably writes only half its records
	// plus a torn trailing record, then returns ErrSimulatedCrash and
	// refuses further writes. Never set it outside tests and the CI
	// drill.
	CrashAfterRounds int
}

// Key identifies one index cell: all observations of one responder from
// one vantage in one round.
type Key struct {
	Responder string
	// Round is the round's virtual timestamp as UnixNano.
	Round   int64
	Vantage string
}

// recordRef locates one record inside a segment file.
type recordRef struct {
	seg int   // segment index (not slice position)
	off int64 // file offset of the record header
	n   int32 // payload length
}

// Store is an open observation store. Create with Open.
type Store struct {
	dir string
	opt Options
	reg *metrics.Registry

	mu      sync.Mutex
	closed  bool
	failed  error // sticky first write failure; all later writes return it
	segs    []*segment
	active  *os.File // last segment, open for append
	w       *bufio.Writer
	flushed int64 // bytes of the active segment durable enough to read
	index   map[Key][]recordRef
	rounds  []int64 // distinct record round timestamps, ascending
	// roundCount includes empty rounds (every target expired), which
	// leave no records — the checkpoint carries their count across
	// reopens. lastRound/hasRound track the append high-water mark.
	roundCount int64
	lastRound  int64
	hasRound   bool
	scans      int64 // records on disk
	ckpt       *Checkpoint
	ckptSeq    uint64        // highest checkpoint sequence ever observed
	sinceCk    int           // rounds appended since the last checkpoint
	payload    func() []byte // optional engine snapshot for checkpoints

	encBuf  []byte // reusable observation encode buffer
	hdrBuf  [recordHeaderSize]byte
	scanBuf []byte // reusable segment-scan payload buffer

	mSegments *metrics.Gauge
	mBytes    *metrics.Gauge
	mRecords  *metrics.Counter
	mRounds   *metrics.Counter
	mCkpts    *metrics.Counter
	mRecov    *metrics.Counter
}

// Open opens (creating if needed) the store in dir. Opening scans every
// segment to rebuild the index, truncates a torn tail record left by a
// crash, and loads the newest intact checkpoint.
func Open(dir string, opt Options) (*Store, error) {
	if opt.SegmentSize <= 0 {
		opt.SegmentSize = DefaultSegmentSize
	}
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = 1
	}
	reg := opt.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:       dir,
		opt:       opt,
		reg:       reg,
		mSegments: reg.Gauge("store_segments"),
		mBytes:    reg.Gauge("store_bytes"),
		mRecords:  reg.Counter("store_records_appended_total"),
		mRounds:   reg.Counter("store_rounds_appended_total"),
		mCkpts:    reg.Counter("store_checkpoints_written_total"),
		mRecov:    reg.Counter("store_recovered_truncated_bytes_total"),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	if err := s.openActive(); err != nil {
		return nil, err
	}
	return s, nil
}

// load rebuilds the in-memory state — segment list, index, round list,
// checkpoint — from the files in s.dir, truncating a torn tail record of
// the final segment. It does not open the active segment for writing.
func (s *Store) load() error {
	segs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	s.segs = segs
	s.index = make(map[Key][]recordRef)
	s.rounds = nil
	s.scans = 0

	var lastRound int64
	for i, seg := range segs {
		seg.records, seg.firstAt, seg.lastAt = 0, 0, 0
		committed, buf, err := scanSegment(seg.path, seg.index, s.scanBuf, func(payload []byte, off int64) error {
			at, vantage, responder, err := decodeIndexKey(payload)
			if err != nil {
				return fmt.Errorf("store: %s offset %d: %w", seg.path, off, err)
			}
			if at < lastRound {
				return fmt.Errorf("store: %s offset %d: round %d out of order (after %d)", seg.path, off, at, lastRound)
			}
			if at > lastRound || len(s.rounds) == 0 {
				s.rounds = append(s.rounds, at)
				lastRound = at
			}
			key := Key{Responder: responder, Round: at, Vantage: vantage}
			s.index[key] = append(s.index[key], recordRef{seg: seg.index, off: off, n: int32(len(payload))})
			if seg.records == 0 {
				seg.firstAt = at
			}
			seg.lastAt = at
			seg.records++
			s.scans++
			return nil
		})
		s.scanBuf = buf
		if err != nil {
			return err
		}
		info, err := os.Stat(seg.path)
		if err != nil {
			return err
		}
		if committed < info.Size() {
			if i != len(segs)-1 {
				return fmt.Errorf("store: segment %s is corrupt mid-stream (%d of %d bytes intact); only the final segment may carry a torn tail", seg.path, committed, info.Size())
			}
			// Crash recovery: drop the torn tail record so the segment
			// ends on a clean record boundary.
			if err := os.Truncate(seg.path, committed); err != nil {
				return err
			}
			s.mRecov.Add(info.Size() - committed)
		}
		seg.size = committed
	}

	s.roundCount = int64(len(s.rounds))
	s.hasRound = len(s.rounds) > 0
	if s.hasRound {
		s.lastRound = s.rounds[len(s.rounds)-1]
	}

	ck, seq, err := loadLatestCheckpoint(s.dir)
	if err != nil {
		return err
	}
	s.ckptSeq = seq
	if ck != nil {
		if ck.Scans > s.scans {
			// A checkpoint is written only after its data is durable, so
			// it can never legitimately describe more records than the
			// log holds.
			return fmt.Errorf("store: checkpoint %d claims %d scans but the log holds only %d — segment data is missing or foreign", ck.Seq, ck.Scans, s.scans)
		}
		// Trailing empty rounds leave no records; the checkpoint is
		// their only trace.
		if !s.hasRound || ck.Round > s.lastRound {
			s.lastRound = ck.Round
			s.hasRound = true
		}
		if ck.Rounds > s.roundCount {
			s.roundCount = ck.Rounds
		}
	}
	s.ckpt = ck
	s.publishGauges()
	return nil
}

// openActive opens the last segment for appending, sealing it and
// starting a fresh one when it is already at the rotation threshold.
func (s *Store) openActive() error {
	if len(s.segs) == 0 || s.segs[len(s.segs)-1].size >= s.opt.SegmentSize {
		next := 0
		if n := len(s.segs); n > 0 {
			next = s.segs[n-1].index + 1
		}
		seg, f, err := createSegment(s.dir, next)
		if err != nil {
			return err
		}
		s.segs = append(s.segs, seg)
		s.active = f
		s.reg.Counter("store_segments_created_total").Inc()
	} else {
		seg := s.segs[len(s.segs)-1]
		f, err := os.OpenFile(seg.path, os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		if _, err := f.Seek(seg.size, 0); err != nil {
			return errors.Join(err, f.Close())
		}
		s.active = f
	}
	if s.w == nil {
		s.w = bufio.NewWriterSize(s.active, 256<<10)
	} else {
		s.w.Reset(s.active)
	}
	s.flushed = s.segs[len(s.segs)-1].size
	s.publishGauges()
	return nil
}

func (s *Store) publishGauges() {
	s.mSegments.Set(int64(len(s.segs)))
	var bytes int64
	for _, seg := range s.segs {
		bytes += seg.size
	}
	s.mBytes.Set(bytes)
}

// decodeIndexKey reads the three leading fields of an encoded
// observation — At, Vantage, Responder — which are exactly the index key.
func decodeIndexKey(payload []byte) (at int64, vantage, responder string, err error) {
	d := decoder{b: payload}
	t := d.time()
	vantage = d.string()
	responder = d.string()
	if d.err != nil {
		return 0, "", "", d.err
	}
	return t.UnixNano(), vantage, responder, nil
}

// AppendRound durably appends one completed round: every observation is
// framed, checksummed, and written to the active segment; the segment is
// flushed, and — every CheckpointEvery rounds — fsynced and checkpointed.
// Rounds must arrive in strictly increasing virtual-time order. The
// first write failure is sticky: the store refuses further appends so a
// half-written round is never extended.
func (s *Store) AppendRound(at time.Time, obs []scanner.Observation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failed != nil {
		return s.failed
	}
	round := at.UnixNano()
	if s.hasRound && round <= s.lastRound {
		return fmt.Errorf("store: round %s does not advance past the last persisted round %s",
			at.UTC().Format(time.RFC3339Nano), time.Unix(0, s.lastRound).UTC().Format(time.RFC3339Nano))
	}

	crash := s.opt.CrashAfterRounds > 0 && s.roundCount+1 >= int64(s.opt.CrashAfterRounds)
	n := len(obs)
	if crash {
		n = len(obs) / 2
	}
	for i := 0; i < n; i++ {
		if err := s.appendRecord(round, &obs[i]); err != nil {
			s.failed = err
			return err
		}
	}
	if crash {
		if err := s.simulateCrash(obs, n); err != nil {
			s.failed = err
			return err
		}
		s.failed = ErrSimulatedCrash
		return s.failed
	}

	stop := s.reg.Timer("store_flush_seconds", flushLatencyBounds...)
	if err := s.w.Flush(); err != nil {
		s.failed = err
		return err
	}
	s.flushed = s.segs[len(s.segs)-1].size
	if len(obs) > 0 {
		s.rounds = append(s.rounds, round)
	}
	s.roundCount++
	s.lastRound, s.hasRound = round, true
	s.scans += int64(len(obs))
	s.mRecords.Add(int64(len(obs)))
	s.mRounds.Inc()
	s.sinceCk++
	if s.sinceCk >= s.opt.CheckpointEvery {
		if err := s.checkpointLocked(); err != nil {
			s.failed = err
			return err
		}
		s.sinceCk = 0
	}
	stop()
	s.publishGauges()
	return nil
}

// appendRecord frames and buffers one observation, rotating the active
// segment first when it has reached the size threshold.
func (s *Store) appendRecord(round int64, o *scanner.Observation) error {
	seg := s.segs[len(s.segs)-1]
	if seg.size >= s.opt.SegmentSize {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		seg = s.segs[len(s.segs)-1]
	}
	s.encBuf = appendObservation(s.encBuf[:0], o)
	payload := s.encBuf
	binary.LittleEndian.PutUint32(s.hdrBuf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(s.hdrBuf[4:], crc32.Checksum(payload, crcTable))
	if _, err := s.w.Write(s.hdrBuf[:]); err != nil {
		return err
	}
	if _, err := s.w.Write(payload); err != nil {
		return err
	}
	off := seg.size
	seg.size += recordHeaderSize + int64(len(payload))
	if seg.records == 0 {
		seg.firstAt = round
	}
	seg.lastAt = round
	seg.records++
	key := Key{Responder: o.Responder, Round: round, Vantage: o.Vantage}
	s.index[key] = append(s.index[key], recordRef{seg: seg.index, off: off, n: int32(len(payload))})
	return nil
}

// rotateLocked seals the active segment (flush, fsync, close) and starts
// the next one.
func (s *Store) rotateLocked() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if !s.opt.NoSync {
		if err := s.active.Sync(); err != nil {
			return err
		}
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	seg, f, err := createSegment(s.dir, s.segs[len(s.segs)-1].index+1)
	if err != nil {
		return err
	}
	s.segs = append(s.segs, seg)
	s.active = f
	s.w.Reset(f)
	s.flushed = seg.size
	s.reg.Counter("store_segments_created_total").Inc()
	return nil
}

// simulateCrash is the CrashAfterRounds failpoint body: the first half of
// the round is already buffered; write one deliberately torn record
// (header plus half a payload), make it all durable, and stop. Recovery
// on the next Open must truncate the torn record and resume from the last
// checkpoint.
func (s *Store) simulateCrash(obs []scanner.Observation, written int) error {
	if len(obs) > 0 {
		torn := &obs[written%len(obs)]
		s.encBuf = appendObservation(s.encBuf[:0], torn)
		payload := s.encBuf
		binary.LittleEndian.PutUint32(s.hdrBuf[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(s.hdrBuf[4:], crc32.Checksum(payload, crcTable))
		if _, err := s.w.Write(s.hdrBuf[:]); err != nil {
			return err
		}
		if _, err := s.w.Write(payload[:len(payload)/2]); err != nil {
			return err
		}
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	if !s.opt.NoSync {
		if err := s.active.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// SetCheckpointPayload installs a callback that supplies an opaque
// snapshot (e.g. the campaign engine's metrics) stored inside every
// subsequent checkpoint. Purely informational: resume rebuilds aggregator
// state by replaying the log, not by deserializing this payload.
func (s *Store) SetCheckpointPayload(fn func() []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.payload = fn
}

// LastCheckpoint returns the newest intact checkpoint, if any.
func (s *Store) LastCheckpoint() (Checkpoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ckpt == nil {
		return Checkpoint{}, false
	}
	return *s.ckpt, true
}

// checkpointLocked fsyncs the active segment and writes a new checkpoint
// recording the round high-water mark.
func (s *Store) checkpointLocked() error {
	if !s.opt.NoSync {
		if err := s.active.Sync(); err != nil {
			return err
		}
	}
	ck := Checkpoint{
		Seq:    s.ckptSeq + 1,
		Round:  s.lastRound,
		Rounds: s.roundCount,
		Scans:  s.scans,
	}
	if s.payload != nil {
		ck.Payload = s.payload()
	}
	if err := writeCheckpoint(s.dir, ck, s.opt.NoSync); err != nil {
		return err
	}
	s.ckptSeq = ck.Seq
	s.ckpt = &ck
	s.mCkpts.Inc()
	// Retention: the newest checkpoint plus one predecessor survive;
	// anything older is superseded.
	return pruneCheckpoints(s.dir, ck.Seq, 2)
}

// TruncateAfter removes every record whose round is later than round
// (UnixNano) — the resume path's way of discarding a partially persisted
// round beyond the last checkpoint — then rewrites the checkpoint to
// match the new tail and rebuilds the index.
func (s *Store) TruncateAfter(round int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	s.active = nil

	cut := -1 // first segment slice position to delete entirely
	for i, seg := range s.segs {
		if seg.records == 0 || seg.lastAt <= round {
			continue
		}
		if seg.firstAt > round {
			cut = i
			break
		}
		// The boundary segment: find the offset of the first record
		// past the cut and truncate there.
		var cutOff int64 = -1
		committed, buf, err := scanSegment(seg.path, seg.index, s.scanBuf, func(payload []byte, off int64) error {
			if cutOff >= 0 {
				return nil
			}
			at, err := decodeRecordAt(payload)
			if err != nil {
				return err
			}
			if at > round {
				cutOff = off
			}
			return nil
		})
		s.scanBuf = buf
		if err != nil {
			return err
		}
		if cutOff < 0 {
			cutOff = committed
		}
		if err := os.Truncate(seg.path, cutOff); err != nil {
			return err
		}
		cut = i + 1
		break
	}
	if cut >= 0 {
		for _, seg := range s.segs[cut:] {
			if err := os.Remove(seg.path); err != nil {
				return err
			}
		}
	}

	// Checkpoints past the cut describe rounds that no longer exist;
	// remove them so the newest survivor matches the new tail. In the
	// resume path round IS the newest checkpoint's round, so that
	// checkpoint — including its empty-round accounting — survives.
	if err := removeCheckpointsAfter(s.dir, round); err != nil {
		return err
	}
	if err := s.load(); err != nil {
		return err
	}
	if err := s.openActive(); err != nil {
		return err
	}
	s.sinceCk = 0
	return nil
}

// Rounds returns the persisted round timestamps (UnixNano), ascending.
// Rounds that carried no records (every target expired) leave no
// timestamps here; Stats().Rounds and the checkpoint count them.
func (s *Store) Rounds() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.rounds...)
}

// Keys returns every index key, sorted by (Round, Responder, Vantage) so
// iteration order is deterministic.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Key, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Responder != b.Responder {
			return a.Responder < b.Responder
		}
		return a.Vantage < b.Vantage
	})
	return out
}

// Lookup returns the observations recorded for one index key, in append
// order, reading only those records from disk.
func (s *Store) Lookup(responder string, round int64, vantage string) ([]scanner.Observation, error) {
	s.mu.Lock()
	refs := append([]recordRef(nil), s.index[Key{Responder: responder, Round: round, Vantage: vantage}]...)
	paths := make(map[int]string, len(s.segs))
	for _, seg := range s.segs {
		paths[seg.index] = seg.path
	}
	s.mu.Unlock()

	var out []scanner.Observation
	var f *os.File
	open := -1
	defer func() {
		if f != nil {
			f.Close() //lint:allow errcheck-hot read-only handle, nothing to flush
		}
	}()
	buf := make([]byte, 0, 512)
	for _, ref := range refs {
		if open != ref.seg {
			if f != nil {
				if err := f.Close(); err != nil {
					return nil, err
				}
			}
			var err error
			f, err = os.Open(paths[ref.seg])
			if err != nil {
				return nil, err
			}
			open = ref.seg
		}
		if cap(buf) < int(ref.n)+recordHeaderSize {
			buf = make([]byte, int(ref.n)+recordHeaderSize)
		}
		rec := buf[:int(ref.n)+recordHeaderSize]
		if _, err := f.ReadAt(rec, ref.off); err != nil {
			return nil, err
		}
		payload := rec[recordHeaderSize:]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rec[4:]) {
			return nil, fmt.Errorf("store: record at %s offset %d failed its checksum", paths[ref.seg], ref.off)
		}
		o, err := decodeObservation(payload)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// Stats summarizes the store for inspection tools.
type Stats struct {
	Segments  int
	Records   int64
	Rounds    int
	Bytes     int64
	IndexKeys int
	// Checkpoint is the newest intact checkpoint; HasCheckpoint reports
	// whether one exists.
	Checkpoint    Checkpoint
	HasCheckpoint bool
}

// Stats returns a snapshot of the store's shape.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Segments:  len(s.segs),
		Records:   s.scans,
		Rounds:    int(s.roundCount),
		IndexKeys: len(s.index),
	}
	for _, seg := range s.segs {
		st.Bytes += seg.size
	}
	if s.ckpt != nil {
		st.Checkpoint, st.HasCheckpoint = *s.ckpt, true
	}
	return st
}

// Segments describes the on-disk segment files in order.
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentInfo, 0, len(s.segs))
	for _, seg := range s.segs {
		out = append(out, SegmentInfo{
			Index:   seg.index,
			Path:    seg.path,
			Bytes:   seg.size,
			Records: seg.records,
			FirstAt: seg.firstAt,
			LastAt:  seg.lastAt,
		})
	}
	return out
}

// SegmentInfo describes one segment file.
type SegmentInfo struct {
	Index   int
	Path    string
	Bytes   int64
	Records int
	// FirstAt and LastAt are the rounds (UnixNano) of the first and last
	// record; both zero when the segment is empty.
	FirstAt, LastAt int64
}

// Close flushes and fsyncs the active segment and releases the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active == nil {
		return nil
	}
	err := s.w.Flush()
	if !s.opt.NoSync {
		if serr := s.active.Sync(); err == nil {
			err = serr
		}
	}
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.active = nil
	return err
}
