package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"github.com/netmeasure/muststaple/internal/ocsp"
	"github.com/netmeasure/muststaple/internal/pkixutil"
	"github.com/netmeasure/muststaple/internal/scanner"
)

// Record framing. Every observation is one record:
//
//	u32 LE payload length | u32 LE CRC32-C of payload | payload
//
// The length comes first so recovery can skip to the checksum without
// decoding, and the CRC covers only the payload — a torn header is
// detected by the length/size bounds, a torn payload by the checksum.
const (
	recordHeaderSize = 8
	// maxRecordSize bounds a single encoded observation. Observations are
	// a few hundred bytes; anything past this is a corrupt length field,
	// not a real record.
	maxRecordSize = 1 << 20
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64
// and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// codecVersion is the observation payload format version, stored in each
// segment header. Bump when the field list below changes.
const codecVersion = 1

// appendObservation appends the deterministic binary encoding of o to b.
// The field order is fixed and documented in DESIGN.md §11: At leads so
// recovery and truncation can read a record's round without decoding the
// rest. Strings are uvarint-length-prefixed, integers are varints, and
// times are a presence byte followed by varint UnixNano (the zero
// time.Time has no UnixNano representation).
func appendObservation(b []byte, o *scanner.Observation) []byte {
	b = appendTime(b, o.At)
	b = appendString(b, o.Vantage)
	b = appendString(b, o.Responder)
	b = appendString(b, o.Domain)
	b = binary.AppendVarint(b, int64(o.DomainWeight))
	b = appendString(b, o.Serial)
	b = binary.AppendVarint(b, int64(o.Latency))
	b = binary.AppendVarint(b, int64(o.Class))
	b = binary.AppendVarint(b, int64(o.HTTPStatus))
	b = binary.AppendVarint(b, int64(o.OCSPStatus))
	b = binary.AppendVarint(b, int64(o.Attempts))
	b = binary.AppendVarint(b, int64(o.FinalClass))
	b = appendBool(b, o.Salvaged)
	b = binary.AppendVarint(b, int64(o.CertStatus))
	b = appendTime(b, o.ProducedAt)
	b = appendTime(b, o.ThisUpdate)
	b = appendTime(b, o.NextUpdate)
	b = appendBool(b, o.HasNextUpdate)
	b = binary.AppendVarint(b, int64(o.NumCerts))
	b = binary.AppendVarint(b, int64(o.NumSerials))
	b = appendTime(b, o.RevokedAt)
	b = binary.AppendVarint(b, int64(o.Reason))
	b = binary.AppendVarint(b, int64(o.CacheMaxAge))
	return b
}

// internTable deduplicates decoded string fields across the records of
// one scan. Observation streams repeat Vantage, Responder, Domain, and
// Serial values heavily (a campaign has a handful of vantages and
// responders, and retries repeat whole identities), so handing back one
// shared string per distinct value cuts scan decoding from one
// allocation per string field to one per distinct value. The map is
// capped: a stream with unbounded distinct values (e.g. random serials)
// degrades to plain allocation instead of growing the table forever.
type internTable struct {
	m map[string]string
}

// internTableCap bounds the distinct values remembered per scan. 4096
// comfortably covers real campaigns (vantages × responders × domains in
// the thousands) at well under a megabyte of table.
const internTableCap = 4096

func newInternTable() *internTable {
	return &internTable{m: make(map[string]string, 64)}
}

// intern returns the canonical string for b, allocating only on first
// sight. The m[string(b)] lookup compiles to a no-allocation map probe.
//
//lint:allocfree
func (t *internTable) intern(b []byte) string {
	if s, ok := t.m[string(b)]; ok {
		return s
	}
	s := string(b) //lint:allow allocfree first sight of a value only; the capped table amortizes this to zero across a scan
	if len(t.m) < internTableCap {
		t.m[s] = s
	}
	return s
}

// decodeObservation decodes a payload produced by appendObservation. It
// never panics on corrupt input: every error is reported, including
// trailing garbage (a strict codec keeps the fuzz round-trip exact).
func decodeObservation(b []byte) (scanner.Observation, error) {
	return decodeObservationInterned(b, nil)
}

// decodeObservationInterned is decodeObservation with the scan-shared
// intern table threaded through; it is nil for one-shot decodes.
// BenchmarkStoreScan's allocs/record guard enforces the steady state at
// runtime; the //lint:allocfree contract enforces it at lint time.
//
//lint:allocfree
func decodeObservationInterned(b []byte, it *internTable) (scanner.Observation, error) {
	d := decoder{b: b, intern: it}
	var o scanner.Observation
	o.At = d.time()
	o.Vantage = d.string()
	o.Responder = d.string()
	o.Domain = d.string()
	o.DomainWeight = int(d.varint())
	o.Serial = d.string()
	o.Latency = time.Duration(d.varint())
	o.Class = scanner.FailureClass(d.varint())
	o.HTTPStatus = int(d.varint())
	o.OCSPStatus = ocsp.ResponseStatus(d.varint())
	o.Attempts = int(d.varint())
	o.FinalClass = scanner.FailureClass(d.varint())
	o.Salvaged = d.bool()
	o.CertStatus = ocsp.CertStatus(d.varint())
	o.ProducedAt = d.time()
	o.ThisUpdate = d.time()
	o.NextUpdate = d.time()
	o.HasNextUpdate = d.bool()
	o.NumCerts = int(d.varint())
	o.NumSerials = int(d.varint())
	o.RevokedAt = d.time()
	o.Reason = pkixutil.ReasonCode(d.varint())
	o.CacheMaxAge = int(d.varint())
	if d.err != nil {
		return scanner.Observation{}, d.err
	}
	if d.off != len(d.b) {
		//lint:allow allocfree corrupt-record error path; the steady-state scan never reaches it
		return scanner.Observation{}, fmt.Errorf("store: %d trailing bytes after observation", len(d.b)-d.off)
	}
	return o, nil
}

// decodeRecordAt reads only the leading At field of a payload — enough
// for TruncateAfter to find a round boundary without a full decode.
func decodeRecordAt(b []byte) (int64, error) {
	d := decoder{b: b}
	t := d.time()
	if d.err != nil {
		return 0, d.err
	}
	return t.UnixNano(), nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendTime encodes a time as a presence byte plus varint UnixNano. The
// zero time.Time (year 1) is outside the UnixNano range, so it gets its
// own presence value and decodes back to exactly time.Time{}.
func appendTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(b, 0)
	}
	b = append(b, 1)
	return binary.AppendVarint(b, t.UnixNano())
}

// decoder is a cursor over an encoded payload. The first error sticks and
// turns every later read into a no-op, so call sites stay linear.
type decoder struct {
	b      []byte
	off    int
	err    error
	intern *internTable // nil: strings allocate per field
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("store: "+format, args...)
	}
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// string reads a length-prefixed string. With an intern table threaded
// (every scan), a previously seen value is a zero-allocation map probe;
// only one-shot decodes materialize a fresh string per call.
//
//lint:allocfree
func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string length %d exceeds remaining %d bytes", n, len(d.b)-d.off) //lint:allow allocfree corrupt-record error path; the steady-state scan never reaches it
		return ""
	}
	raw := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	if d.intern != nil {
		return d.intern.intern(raw) //lint:allow allocfree the inlined intern allocates on first sight only; the capped table amortizes it to zero across a scan
	}
	return string(raw) //lint:allow allocfree one-shot decode path (nil intern table); every scan threads the table and hits the zero-alloc probe
}

// rawByte reads one uninterpreted byte (the corpus record's flag field).
func (d *decoder) rawByte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated byte at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail("truncated bool at offset %d", d.off)
		return false
	}
	v := d.b[d.off]
	d.off++
	if v > 1 {
		d.fail("bad bool byte %d at offset %d", v, d.off-1)
		return false
	}
	return v == 1
}

func (d *decoder) time() time.Time {
	if d.err != nil {
		return time.Time{}
	}
	if d.off >= len(d.b) {
		d.fail("truncated time at offset %d", d.off)
		return time.Time{}
	}
	presence := d.b[d.off]
	d.off++
	switch presence {
	case 0:
		return time.Time{}
	case 1:
		return time.Unix(0, d.varint()).UTC()
	default:
		d.fail("bad time presence byte %d at offset %d", presence, d.off-1)
		return time.Time{}
	}
}
