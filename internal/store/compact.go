package store

import (
	"errors"
	"io"
	"os"
)

// CompactStats reports what Compact changed.
type CompactStats struct {
	// SegmentsMerged is how many under-full segments were folded into
	// merged neighbours (0 when the store was already compact).
	SegmentsMerged int
	// CheckpointsDropped counts superseded checkpoint files removed.
	CheckpointsDropped int
}

// Compact is the scale lever for long campaigns: it merges runs of
// adjacent under-full sealed segments (each below half the rotation
// threshold, combined data still within one segment) into single files,
// and drops every superseded checkpoint, keeping only the newest. The
// active segment is never touched, record bytes are copied verbatim
// (checksums and order are preserved), and the observation stream read
// back after compaction is identical to the one before it.
func (s *Store) Compact() (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st CompactStats
	if s.closed {
		return st, ErrClosed
	}
	if err := s.w.Flush(); err != nil {
		return st, err
	}
	s.flushed = s.segs[len(s.segs)-1].size

	sealed := s.segs[:len(s.segs)-1]
	var group []*segment
	var groupData int64 // record bytes in the pending group, headers excluded
	flush := func() error {
		if len(group) >= 2 {
			if err := s.mergeSegments(group); err != nil {
				return err
			}
			st.SegmentsMerged += len(group)
		}
		group, groupData = nil, 0
		return nil
	}
	for _, seg := range sealed {
		data := seg.size - segHeaderSize
		underFull := seg.size < s.opt.SegmentSize/2
		if !underFull || groupData+data+segHeaderSize > s.opt.SegmentSize {
			if err := flush(); err != nil {
				return st, err
			}
		}
		if underFull {
			group = append(group, seg)
			groupData += data
		}
	}
	if err := flush(); err != nil {
		return st, err
	}

	// Superseded checkpoints: keep only the newest intact one.
	if s.ckpt != nil {
		seqs, err := listCheckpoints(s.dir)
		if err != nil {
			return st, err
		}
		before := len(seqs)
		if err := pruneCheckpoints(s.dir, s.ckpt.Seq, 1); err != nil {
			return st, err
		}
		seqs, err = listCheckpoints(s.dir)
		if err != nil {
			return st, err
		}
		st.CheckpointsDropped = before - len(seqs)
	}

	if st.SegmentsMerged == 0 {
		return st, nil
	}
	// The segment list changed on disk; rebuild everything from it.
	if err := s.active.Close(); err != nil {
		return st, err
	}
	s.active = nil
	if err := s.load(); err != nil {
		return st, err
	}
	if err := s.openActive(); err != nil {
		return st, err
	}
	return st, nil
}

// mergeSegments rewrites a run of adjacent sealed segments into a single
// file that takes over the first member's name and index, then removes
// the other members. The merged file is written to a temp name and
// renamed into place, so a crash mid-merge leaves either the old segments
// or the finished merge — never a half-written segment with live data
// missing.
func (s *Store) mergeSegments(group []*segment) error {
	first := group[0]
	tmp, err := os.CreateTemp(s.dir, "merge-*.tmp")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		return errors.Join(err, tmp.Close(), os.Remove(tmp.Name()))
	}
	if _, err := tmp.Write(encodeSegmentHeader(first.index)); err != nil {
		return cleanup(err)
	}
	for _, seg := range group {
		if err := copySegmentRecords(tmp, seg.path); err != nil {
			return cleanup(err)
		}
	}
	if !s.opt.NoSync {
		if err := tmp.Sync(); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Close(); err != nil {
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	if err := os.Rename(tmp.Name(), first.path); err != nil {
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	for _, seg := range group[1:] {
		if err := os.Remove(seg.path); err != nil {
			return err
		}
	}
	if s.opt.NoSync {
		return nil
	}
	return syncDir(s.dir)
}

// copySegmentRecords appends the record bytes of the segment at path
// (everything after the header) to w, verbatim.
func copySegmentRecords(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() //lint:allow errcheck-hot read-only handle, nothing to flush
	if _, err := f.Seek(segHeaderSize, 0); err != nil {
		return err
	}
	_, err = io.Copy(w, f)
	return err
}
