package store

import (
	"fmt"
	"reflect"
	"testing"
	"time"
	"unsafe"

	"github.com/netmeasure/muststaple/internal/ocsp"
	"github.com/netmeasure/muststaple/internal/pkixutil"
	"github.com/netmeasure/muststaple/internal/scanner"
)

// fullObservation exercises every codec field with non-zero values.
func fullObservation() scanner.Observation {
	at := time.Date(2018, 4, 25, 13, 0, 0, 0, time.UTC)
	return scanner.Observation{
		Vantage:       "eu-west",
		Responder:     "ocsp.example.net",
		Domain:        "example.net",
		DomainWeight:  42,
		Serial:        "04:8f:22",
		At:            at,
		Latency:       137 * time.Millisecond,
		Class:         scanner.ClassOK,
		HTTPStatus:    200,
		OCSPStatus:    ocsp.StatusSuccessful,
		Attempts:      2,
		FinalClass:    scanner.ClassOK,
		Salvaged:      true,
		CertStatus:    ocsp.Revoked,
		ProducedAt:    at.Add(-10 * time.Minute),
		ThisUpdate:    at.Add(-time.Hour),
		NextUpdate:    at.Add(6 * time.Hour),
		HasNextUpdate: true,
		NumCerts:      1,
		NumSerials:    3,
		RevokedAt:     at.Add(-30 * 24 * time.Hour),
		Reason:        pkixutil.ReasonKeyCompromise,
		CacheMaxAge:   3600,
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cases := map[string]scanner.Observation{
		"full": fullObservation(),
		"zero": {},
		"failure": {
			Vantage:     "us-east",
			Responder:   "ocsp.broken.example",
			At:          time.Unix(0, 1524661200000000001).UTC(),
			Latency:     2 * time.Second,
			Class:       scanner.ClassTCP,
			Attempts:    3,
			FinalClass:  scanner.ClassTCP,
			CacheMaxAge: -1,
		},
		"negative-varints": {
			DomainWeight: -7,
			Latency:      -time.Millisecond,
			CacheMaxAge:  -1,
			At:           time.Unix(0, -12345).UTC(),
		},
	}
	for name, want := range cases {
		t.Run(name, func(t *testing.T) {
			payload := appendObservation(nil, &want)
			got, err := decodeObservation(payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestCodecRejectsTrailingBytes(t *testing.T) {
	o := fullObservation()
	payload := appendObservation(nil, &o)
	if _, err := decodeObservation(append(payload, 0)); err == nil {
		t.Fatal("decode accepted a payload with trailing garbage")
	}
}

func TestCodecRejectsEveryTruncation(t *testing.T) {
	o := fullObservation()
	payload := appendObservation(nil, &o)
	for n := 0; n < len(payload); n++ {
		if _, err := decodeObservation(payload[:n]); err == nil {
			t.Fatalf("decode accepted a %d-byte prefix of a %d-byte payload", n, len(payload))
		}
	}
}

func TestDecodeRecordAt(t *testing.T) {
	o := fullObservation()
	payload := appendObservation(nil, &o)
	at, err := decodeRecordAt(payload)
	if err != nil {
		t.Fatalf("decodeRecordAt: %v", err)
	}
	if at != o.At.UnixNano() {
		t.Fatalf("decodeRecordAt = %d, want %d", at, o.At.UnixNano())
	}
}

func TestDecodeIndexKey(t *testing.T) {
	o := fullObservation()
	payload := appendObservation(nil, &o)
	at, vantage, responder, err := decodeIndexKey(payload)
	if err != nil {
		t.Fatalf("decodeIndexKey: %v", err)
	}
	if at != o.At.UnixNano() || vantage != o.Vantage || responder != o.Responder {
		t.Fatalf("decodeIndexKey = (%d, %q, %q), want (%d, %q, %q)",
			at, vantage, responder, o.At.UnixNano(), o.Vantage, o.Responder)
	}
}

// FuzzRecordRoundTrip feeds arbitrary bytes through the decoder (it must
// never panic, and every accepted payload must re-encode byte-identically)
// and seeds the corpus with real encodings.
func FuzzRecordRoundTrip(f *testing.F) {
	o := fullObservation()
	f.Add(appendObservation(nil, &o))
	var zero scanner.Observation
	f.Add(appendObservation(nil, &zero))
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 0x80}) // truncated varint after a time presence byte
	f.Fuzz(func(t *testing.T, payload []byte) {
		got, err := decodeObservation(payload)
		if err != nil {
			return
		}
		// Any accepted payload must re-encode to something that decodes
		// back to the same observation. (Byte identity is too strong:
		// binary.Uvarint tolerates overlong varints.)
		re := appendObservation(nil, &got)
		if len(re) > len(payload) {
			t.Fatalf("re-encoding grew from %d to %d bytes", len(payload), len(re))
		}
		again, err := decodeObservation(re)
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		if !reflect.DeepEqual(again, got) {
			t.Fatalf("value round trip unstable:\n got %+v\nwant %+v", again, got)
		}
	})
}

func TestInternTableDedupsAndCaps(t *testing.T) {
	it := newInternTable()
	a1 := it.intern([]byte("vantage-1"))
	a2 := it.intern([]byte("vantage-1"))
	if a1 != "vantage-1" || a2 != "vantage-1" {
		t.Fatalf("intern returned %q, %q", a1, a2)
	}
	// Same backing string object, not just equal bytes.
	if unsafe.StringData(a1) != unsafe.StringData(a2) {
		t.Error("repeated intern did not return the shared string")
	}
	// Past the cap the table stops remembering but stays correct.
	for i := 0; i < internTableCap+16; i++ {
		v := []byte(fmt.Sprintf("v-%d", i))
		if got := it.intern(v); got != string(v) {
			t.Fatalf("intern(%q) = %q", v, got)
		}
	}
	if len(it.m) > internTableCap {
		t.Errorf("table grew to %d entries, cap is %d", len(it.m), internTableCap)
	}
}

func TestDecodeObservationInternedMatchesPlain(t *testing.T) {
	variant := fullObservation()
	variant.Vantage = "ap-south"
	variant.Serial = ""
	obs := []scanner.Observation{fullObservation(), {}, variant, fullObservation()}
	it := newInternTable()
	for i, o := range obs {
		payload := appendObservation(nil, &o)
		plain, err := decodeObservation(payload)
		if err != nil {
			t.Fatalf("obs %d: %v", i, err)
		}
		interned, err := decodeObservationInterned(payload, it)
		if err != nil {
			t.Fatalf("obs %d interned: %v", i, err)
		}
		if !reflect.DeepEqual(plain, interned) {
			t.Errorf("obs %d: interned decode diverges:\nplain    %+v\ninterned %+v", i, plain, interned)
		}
	}
}
