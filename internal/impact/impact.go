// Package impact quantifies the question §8 of the paper leaves open: if
// browsers hard-failed on missing staples today (as OCSP Must-Staple
// demands), how many TLS connections would actually break, and how much of
// that is the web server's stapling policy rather than the responders?
//
// The paper argues responders "would not be a barrier ... as most failures
// persist far shorter than most OCSP responses' validity periods" provided
// servers are not "very aggressive" about discarding responses. This
// analysis runs that argument: it replays a measurement campaign's
// per-(responder, vantage) timeline through three server models — one with
// no cache at all, an Apache-like drop-on-error cache, and the paper's
// recommended retain-until-expiry policy — and counts the handshakes a
// Must-Staple-respecting client would reject under each.
package impact

import (
	"fmt"
	"sort"
	"time"

	"github.com/netmeasure/muststaple/internal/scanner"
)

// ServerModel selects a stapling-cache policy for the what-if replay.
type ServerModel int

const (
	// ModelNoCache staples only when the live fetch at handshake time
	// succeeds — the worst case (an on-demand, cacheless server).
	ModelNoCache ServerModel = iota
	// ModelApache keeps fetched responses but drops them whenever a
	// refresh fails (§7.2's measured Apache behavior), and staples
	// expired bytes — which a validating client rejects anyway.
	ModelApache
	// ModelCorrect retains the last valid response until its
	// nextUpdate while retrying (§8's recommendation).
	ModelCorrect
)

var modelNames = map[ServerModel]string{
	ModelNoCache: "no-cache",
	ModelApache:  "apache-like",
	ModelCorrect: "correct",
}

func (m ServerModel) String() string {
	if s, ok := modelNames[m]; ok {
		return s
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// Models lists the replayed policies in presentation order.
func Models() []ServerModel { return []ServerModel{ModelNoCache, ModelApache, ModelCorrect} }

// cacheState is one (responder, vantage, model) stapling cache.
type cacheState struct {
	hasResponse bool
	validFrom   time.Time // thisUpdate: a hard-fail client rejects earlier
	validUntil  time.Time // zero means blank nextUpdate: never expires
}

// usableAt applies the *client's* validation window: a staple is only
// worth sending if a hard-failing client would accept it now.
func (c *cacheState) usableAt(t time.Time) bool {
	if !c.hasResponse {
		return false
	}
	if t.Before(c.validFrom) {
		return false
	}
	return c.validUntil.IsZero() || !t.After(c.validUntil)
}

// HardFail is a scanner.Aggregator replaying observations through the
// server models.
type HardFail struct {
	states map[string]map[ServerModel]*cacheState
	// ok/total per model.
	ok    map[ServerModel]int
	total int
}

// NewHardFail returns an empty analysis.
func NewHardFail() *HardFail {
	return &HardFail{
		states: make(map[string]map[ServerModel]*cacheState),
		ok:     make(map[ServerModel]int),
	}
}

// Add implements scanner.Aggregator: each observation is simultaneously
// (a) the server's refresh attempt and (b) one client handshake at that
// instant.
func (h *HardFail) Add(o scanner.Observation) {
	key := o.Responder + "|" + o.Vantage
	perModel := h.states[key]
	if perModel == nil {
		perModel = make(map[ServerModel]*cacheState)
		for _, m := range Models() {
			perModel[m] = &cacheState{}
		}
		h.states[key] = perModel
	}

	fetchOK := o.Class.Usable()
	fresh := cacheState{hasResponse: fetchOK, validFrom: o.ThisUpdate}
	if o.HasNextUpdate {
		fresh.validUntil = o.NextUpdate
	}
	// What the client would say about the just-fetched response, right
	// now. Responders whose validity equals their update interval (the
	// hinet/cnnic hazard) or whose thisUpdate is in the future can hand
	// out responses that are unusable on arrival — those break
	// hard-failing clients under *every* server model.
	freshUsable := fetchOK && fresh.usableAt(o.At)

	h.total++
	for _, m := range Models() {
		st := perModel[m]
		switch {
		case fetchOK && m == ModelCorrect:
			// A correct server never replaces a staple its clients
			// accept with one they currently would not (e.g. a
			// future-thisUpdate response): it keeps the old one and
			// switches once the new response is both usable and
			// longer-lived.
			if !st.usableAt(o.At) || (freshUsable && betterUntil(fresh.validUntil, st.validUntil)) {
				*st = fresh
			}
		case fetchOK:
			*st = fresh
		default:
			switch m {
			case ModelNoCache, ModelApache:
				// No cache at all, or drop-on-error: the old
				// response is gone the moment a refresh fails.
				st.hasResponse = false
			case ModelCorrect:
				// Retained until expiry.
			}
		}

		serves := false
		switch m {
		case ModelNoCache:
			serves = freshUsable
		default:
			serves = st.usableAt(o.At)
		}
		if serves {
			h.ok[m]++
		}
	}
}

// NewShard implements scanner.ShardedAggregator. Replay state is keyed by
// (responder, vantage) and each observation sequence must be replayed in
// campaign order, which holds because the engine keeps every responder's
// observations on one shard.
func (h *HardFail) NewShard() scanner.Aggregator { return NewHardFail() }

// Merge implements scanner.ShardedAggregator: cache states are
// responder-disjoint across shards, and the ok/total tallies sum.
func (h *HardFail) Merge(shard scanner.Aggregator) {
	sh := shard.(*HardFail)
	for key, perModel := range sh.states {
		h.states[key] = perModel
	}
	for m, n := range sh.ok {
		h.ok[m] += n
	}
	h.total += sh.total
}

// betterUntil reports whether a replaces b as the longer-lived expiry
// (zero = never expires = best).
func betterUntil(a, b time.Time) bool {
	if a.IsZero() {
		return true
	}
	if b.IsZero() {
		return false
	}
	return a.After(b)
}

// Result is one model's outcome.
type Result struct {
	Model ServerModel
	// BrokenFraction is the share of handshakes a hard-failing client
	// would reject under this server model.
	BrokenFraction float64
	// Handshakes is the replayed connection count.
	Handshakes int
}

// Results returns per-model breakage, in Models() order.
func (h *HardFail) Results() []Result {
	out := make([]Result, 0, len(h.ok))
	for _, m := range Models() {
		r := Result{Model: m, Handshakes: h.total}
		if h.total > 0 {
			r.BrokenFraction = 1 - float64(h.ok[m])/float64(h.total)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}
