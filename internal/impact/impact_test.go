package impact

import (
	"testing"
	"time"

	"github.com/netmeasure/muststaple/internal/scanner"
)

var t0 = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

// obs builds one observation; usable=true means a fresh 7-day response.
func obs(hour int, usable bool) scanner.Observation {
	o := scanner.Observation{
		Responder: "ocsp.r.test",
		Vantage:   "Oregon",
		At:        t0.Add(time.Duration(hour) * time.Hour),
	}
	if usable {
		o.Class = scanner.ClassOK
		o.HasNextUpdate = true
		o.ThisUpdate = o.At.Add(-time.Hour)
		o.NextUpdate = o.At.Add(7 * 24 * time.Hour)
	} else {
		o.Class = scanner.ClassTCP
	}
	return o
}

func results(h *HardFail) map[ServerModel]Result {
	out := map[ServerModel]Result{}
	for _, r := range h.Results() {
		out[r.Model] = r
	}
	return out
}

func TestAllHealthy(t *testing.T) {
	h := NewHardFail()
	for i := 0; i < 24; i++ {
		h.Add(obs(i, true))
	}
	for m, r := range results(h) {
		if r.BrokenFraction != 0 {
			t.Errorf("%v: broken = %v, want 0", m, r.BrokenFraction)
		}
		if r.Handshakes != 24 {
			t.Errorf("%v: handshakes = %d", m, r.Handshakes)
		}
	}
}

func TestTransientOutageWithinValidity(t *testing.T) {
	// A 3-hour outage after one good fetch. The paper's argument: with
	// week-long validity, a retaining server survives; a cacheless or
	// drop-on-error server does not.
	h := NewHardFail()
	h.Add(obs(0, true))
	for i := 1; i <= 3; i++ {
		h.Add(obs(i, false))
	}
	h.Add(obs(4, true))
	got := results(h)
	if got[ModelCorrect].BrokenFraction != 0 {
		t.Errorf("correct: broken = %v, want 0 (outage ≪ validity)", got[ModelCorrect].BrokenFraction)
	}
	want := 3.0 / 5.0
	if got[ModelNoCache].BrokenFraction != want {
		t.Errorf("no-cache: broken = %v, want %v", got[ModelNoCache].BrokenFraction, want)
	}
	if got[ModelApache].BrokenFraction != want {
		t.Errorf("apache: broken = %v, want %v (drop-on-error)", got[ModelApache].BrokenFraction, want)
	}
}

func TestOutageOutlastingValidity(t *testing.T) {
	// Even the correct server breaks once the retained response
	// expires: a >7-day outage with 7-day validity.
	h := NewHardFail()
	h.Add(obs(0, true))
	brokenHour := -1
	for i := 1; i <= 9*24; i++ {
		h.Add(obs(i, false))
		if brokenHour < 0 {
			if r := results(h)[ModelCorrect]; r.BrokenFraction > 0 {
				brokenHour = i
			}
		}
	}
	if brokenHour < 0 {
		t.Fatal("correct server should eventually run out of staple")
	}
	// The retained response was valid for 7 days from the fetch.
	if brokenHour < 7*24 || brokenHour > 7*24+2 {
		t.Errorf("correct server broke at hour %d, want ≈%d", brokenHour, 7*24+1)
	}
}

func TestBlankNextUpdateNeverExpires(t *testing.T) {
	h := NewHardFail()
	o := obs(0, true)
	o.HasNextUpdate = false
	o.NextUpdate = time.Time{}
	h.Add(o)
	for i := 1; i < 100*24; i += 24 {
		h.Add(obs(i, false))
	}
	if got := results(h)[ModelCorrect].BrokenFraction; got != 0 {
		t.Errorf("blank nextUpdate staple should serve forever: broken = %v", got)
	}
}

func TestPersistentFailureBreaksEveryone(t *testing.T) {
	h := NewHardFail()
	for i := 0; i < 10; i++ {
		h.Add(obs(i, false))
	}
	for m, r := range results(h) {
		if r.BrokenFraction != 1 {
			t.Errorf("%v: broken = %v, want 1 (never a valid staple)", m, r.BrokenFraction)
		}
	}
}

func TestPerResponderIsolation(t *testing.T) {
	// One responder down must not break another's staple state.
	h := NewHardFail()
	good := obs(0, true)
	bad := obs(0, false)
	bad.Responder = "ocsp.other.test"
	h.Add(good)
	h.Add(bad)
	got := results(h)[ModelCorrect]
	if got.Handshakes != 2 || got.BrokenFraction != 0.5 {
		t.Errorf("result = %+v, want 2 handshakes with 0.5 broken", got)
	}
}

func TestModelStrings(t *testing.T) {
	if ModelNoCache.String() != "no-cache" || ModelApache.String() != "apache-like" || ModelCorrect.String() != "correct" {
		t.Error("model names wrong")
	}
	if len(Models()) != 3 {
		t.Error("model list wrong")
	}
}

// obsFor is obs with an explicit responder, for sharding tests.
func obsFor(responder string, hour int, usable bool) scanner.Observation {
	o := obs(hour, usable)
	o.Responder = responder
	return o
}

// TestHardFailShardMerge: routing responders to shards and merging must
// reproduce the sequential replay exactly — HardFail's contract as a
// scanner.ShardedAggregator.
func TestHardFailShardMerge(t *testing.T) {
	responders := []string{"ocsp.a.test", "ocsp.b.test", "ocsp.c.test", "ocsp.d.test"}
	feed := func(add func(scanner.Observation)) {
		for hour := 0; hour < 48; hour++ {
			for i, r := range responders {
				// Staggered outages: responder i is down for hours
				// [8+4i, 14+4i); responder d never recovers.
				usable := hour < 8+4*i || hour >= 14+4*i
				if r == "ocsp.d.test" && hour >= 20 {
					usable = false
				}
				add(obsFor(r, hour, usable))
			}
		}
	}

	seq := NewHardFail()
	feed(seq.Add)

	merged := NewHardFail()
	shards := []scanner.Aggregator{merged.NewShard(), merged.NewShard()}
	feed(func(o scanner.Observation) {
		// Any responder→shard routing works as long as it is stable;
		// the engine uses an FNV hash, here a simple parity split.
		if o.Responder == "ocsp.a.test" || o.Responder == "ocsp.c.test" {
			shards[0].Add(o)
		} else {
			shards[1].Add(o)
		}
	})
	merged.Merge(shards[0])
	merged.Merge(shards[1])

	want, got := seq.Results(), merged.Results()
	if len(want) != len(got) {
		t.Fatalf("model counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("model %v: sequential %+v vs sharded %+v", want[i].Model, want[i], got[i])
		}
	}
}
