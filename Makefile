# Test tiers for the muststaple reproduction.
#
#   tier1       — the seed gate: vet + gofmt + repolint (the determinism/
#                 concurrency analyzers in internal/lint), everything
#                 builds, and the unit/integration suite passes.
#   tier2       — static analysis (vet + repolint) plus the full suite
#                 under the race detector (the pipelined campaign engine
#                 is concurrent; this is the tier that guards it).
#   bench-guard — asserts the pipelined engine is not slower than the
#                 legacy round-barrier engine, the parallel world build is
#                 not slower than the serial reference (each reports a
#                 "speedup" metric; both redesigns target >= 1.5x on
#                 >= 4 cores), and the responder signed-response cache hot
#                 path beats per-scan signing by >= 3x ns/op and >= 5x
#                 allocs/op (no core gate; the win is eliminated work).
#   loadcheck   — tier-2 serving-tier smoke: boots the OCSP serving tier
#                 on a loopback socket and fires a short open-loop
#                 ocspload burst at it, failing on zero throughput, any
#                 5xx, or any transport error.
#   capacitycheck — tier-2 closed-loop capacity gate: ocspload -capacity
#                 probes the loopback tier (double then bisect the
#                 offered rate until the p99 SLO breaks) and fails when
#                 the discovered ceiling is below -min-capacity — 2× the
#                 PR 6 fixed-rate 2000 req/s baseline.
#   staplecheck — tier-2 telemetry-ingestion gate: staplereport
#                 -ingestcheck floods the Expect-Staple report collector
#                 in-process (decode + shard + aggregate + persist) and
#                 fails below 20k reports/s or above the heap bound,
#                 then an ocspload -stapleserve burst exercises the same
#                 path over a real loopback socket.
#   memcheck    — tier-2 streaming-construction guard: runs the same quick
#                 cmd/repro pipeline at -world-scale 1 and 10 and fails if
#                 the 10× world's heap high-water mark exceeds ~1.5× the 1×
#                 run's (scripts/memcheck.sh; see DESIGN.md §13).
#   bench-snapshot — runs the guard benchmarks plus the world-scale memory
#                 sweep (heap-peak-bytes at 1× and 10×), the OCSP/CRL
#                 codec, CRL Find, responder hot-path, scan-client cache,
#                 and observation-store micro-benchmarks, then an ocspload
#                 open-loop run against a real loopback serving tier
#                 (p50/p99/p999 over the socket) plus a closed-loop
#                 capacity search (max sustainable req/s under the p99
#                 SLO), and archives the results as BENCH_PR10.json (via
#                 cmd/benchjson).
#   bench-compare — diffs the previous archived snapshot against the
#                 current one (via cmd/benchjson -compare); warns and
#                 succeeds when either snapshot is missing, so fresh
#                 clones and CI runs without archives don't fail.
#   racecheck   — focused race-detector pass over the concurrent hot-path
#                 packages (serving tier, load generator, responder,
#                 scanner, store, engine core) under -short, so the
#                 data-race gate on the paths the lint contracts annotate
#                 runs in minutes, not the full-suite tier-2 budget.
#   crash-recovery — end-to-end durability check: runs a campaign, kills
#                 a second run mid-round via the store failpoint, resumes
#                 it, and asserts the resumed figures match
#                 (scripts/crash_recovery.sh).

GO ?= go

# The concurrent hot-path packages: every package that either serves the
# request path, drives load at it, or feeds it. racecheck and the
# //lint:allocfree contracts (DESIGN.md §15) cover the same surface.
RACE_PKGS = ./internal/ocspserver ./internal/loadgen ./internal/responder \
	./internal/scanner ./internal/store ./internal/core ./internal/expectstaple

.PHONY: all tier1 tier2 loadcheck capacitycheck staplecheck memcheck racecheck bench-guard bench bench-snapshot bench-compare crash-recovery vet fmt fmt-check lint

all: tier1

tier1: vet fmt-check lint
	$(GO) build ./...
	$(GO) test ./...

tier2: vet lint racecheck loadcheck capacitycheck staplecheck memcheck
	$(GO) test -race ./...

# racecheck is the quick race gate: -short keeps each package's suite to
# its fast paths, so the whole pass stays well under the full -race run.
racecheck:
	$(GO) test -race -short $(RACE_PKGS)

# loadcheck boots a self-contained serving tier (own CA, loopback
# listener) and drives a 2s open-loop burst; -check fails the run on
# zero completed requests, any HTTP 5xx, or any transport error.
loadcheck:
	$(GO) run ./cmd/ocspload -selfserve -rate 500 -duration 2s -check

# capacitycheck closes the loop: search for the highest rate the
# loopback tier sustains at p99 <= 25ms and fail below 4000 req/s (2x
# the PR 6 fixed-rate baseline). Short probes keep the gate under ~30s.
capacitycheck:
	$(GO) run ./cmd/ocspload -selfserve -capacity -slo 25ms -probe-duration 2s \
		-start-rate 1000 -max-rate 65536 -check -min-capacity 4000

# staplecheck gates the violation-report ingestion tier: the in-process
# flood must sustain >= 20k reports/s inside a bounded heap, and the
# socket path must absorb a short open-loop burst with no errors.
staplecheck:
	$(GO) run ./cmd/staplereport -ingestcheck -reports 200000 -workers 8 \
		-min-rate 20000 -max-heap-mb 128
	$(GO) run ./cmd/ocspload -stapleserve -rate 2000 -duration 2s -check

# memcheck asserts the fixed-memory property of streaming world
# construction: a 10× world must not grow the heap high-water mark past
# MAX_RATIO (default 1.5) times the 1× run's.
memcheck:
	./scripts/memcheck.sh

vet:
	$(GO) vet ./...

# fmt fails when any file needs formatting, listing the offenders; run
# `gofmt -w .` to fix.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "$$out"; \
		echo "gofmt: the files above need formatting (run: gofmt -w .)"; \
		exit 1; \
	fi

fmt-check: fmt

# lint runs the repo's determinism/concurrency analyzers (internal/lint,
# cmd/repolint). See DESIGN.md §10 and §15. Add -json for machine-readable
# findings or -timing for per-analyzer wall time.
lint:
	$(GO) run ./cmd/repolint ./...

bench-guard:
	$(GO) test -run - -bench 'BenchmarkCampaignEngineGuard|BenchmarkWorldBuildGuard|BenchmarkResponderRespondGuard' -benchtime 1x .

bench:
	$(GO) test -run - -bench . -benchtime 1x .

bench-snapshot:
	{ $(GO) test -run - -bench 'BenchmarkCampaignEngineGuard|BenchmarkWorldBuildGuard|BenchmarkResponderRespondGuard' -benchtime 1x . ; \
	  $(GO) test -run - -bench '^BenchmarkWorldScaleSweep$$' -benchtime 1x . ; \
	  $(GO) test -run - -bench '^(BenchmarkOCSPCreateResponse|BenchmarkOCSPParseResponse|BenchmarkCRLCreateAndParse|BenchmarkResponderRespond)$$' . ; \
	  $(GO) test -run - -bench '^(BenchmarkStoreAppend|BenchmarkStoreScan)$$' -benchtime 100x . ; \
	  $(GO) test -run - -bench '^BenchmarkServeGETHot$$' . ; \
	  $(GO) test -run - -bench '^BenchmarkCRLFindMiss$$' ./internal/crl ; \
	  $(GO) test -run - -bench BenchmarkClientCaches ./internal/scanner ; \
	  $(GO) run ./cmd/ocspload -selfserve -rate 2000 -duration 5s -bench ServingTierLoad ; \
	  $(GO) run ./cmd/ocspload -selfserve -capacity -slo 25ms -probe-duration 2s \
		-start-rate 1000 -max-rate 65536 -bench ServingTierCapacity ; \
	  $(GO) run ./cmd/staplereport -ingestcheck -reports 200000 -workers 8 \
		-min-rate 0 -max-heap-mb 0 -bench StapleIngest ; } | $(GO) run ./cmd/benchjson > BENCH_PR10.json

BENCH_BASE ?= BENCH_PR8.json
BENCH_HEAD ?= BENCH_PR10.json

bench-compare:
	@if [ ! -f "$(BENCH_BASE)" ] || [ ! -f "$(BENCH_HEAD)" ]; then \
		echo "bench-compare: snapshot missing ($(BENCH_BASE) and/or $(BENCH_HEAD)); run 'make bench-snapshot' to create one — skipping comparison"; \
	else \
		$(GO) run ./cmd/benchjson -compare $(BENCH_BASE) $(BENCH_HEAD); \
	fi

crash-recovery:
	./scripts/crash_recovery.sh
