# Test tiers for the muststaple reproduction.
#
#   tier1       — the seed gate: everything builds and the unit/integration
#                 suite passes.
#   tier2       — static analysis plus the full suite under the race
#                 detector (the pipelined campaign engine is concurrent;
#                 this is the tier that guards it).
#   bench-guard — asserts the pipelined engine is not slower than the
#                 legacy round-barrier engine (reports a "speedup" metric;
#                 the redesign targets >= 1.5x on >= 4 cores).

GO ?= go

.PHONY: all tier1 tier2 bench-guard bench vet fmt

all: tier1

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2: vet
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

bench-guard:
	$(GO) test -run - -bench BenchmarkCampaignEngineGuard -benchtime 1x .

bench:
	$(GO) test -run - -bench . -benchtime 1x .
