module github.com/netmeasure/muststaple

go 1.24
