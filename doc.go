// Package muststaple is a from-scratch Go reproduction of "Is the Web
// Ready for OCSP Must-Staple?" (Chung et al., IMC 2018): a complete OCSP
// (RFC 6960) and CRL (RFC 5280) implementation, a synthetic PKI and
// fault-injectable responder fleet, a six-vantage measurement client, the
// browser and web-server behavior models of the paper's Tables 2 and 3,
// and a harness that regenerates every table and figure of the paper's
// evaluation.
//
// The package tree:
//
//   - internal/ocsp, internal/crl, internal/pkixutil — the wire-format
//     substrates, built on encoding/asn1 only.
//   - internal/pki — the synthetic certificate hierarchy (AIA, CRLDP, and
//     the TLS-Feature Must-Staple extension).
//   - internal/responder, internal/netsim, internal/clock — the simulated
//     responder fleet and Internet.
//   - internal/scanner, internal/census, internal/consistency — the
//     measurement systems (§5 of the paper): a context-aware scan client
//     with retry/backoff and a pipelined campaign engine with sharded
//     aggregation (see DESIGN.md §6).
//   - internal/metrics — the lightweight counters/gauges/histograms
//     behind Campaign.Stats().
//   - internal/browser, internal/webserver — the client and server test
//     suites (§6, §7).
//   - internal/world, internal/core, internal/report — the calibrated
//     scenario, the experiment runners, and the table/figure renderers.
//
// Start with cmd/repro to regenerate the paper, or examples/quickstart for
// the library API. The benchmarks in bench_test.go exercise one experiment
// per table and figure plus the ablations listed in DESIGN.md.
package muststaple
